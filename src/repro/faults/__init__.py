"""Fault injection for gate-level netlists.

The paper's security argument for secAND2-PD is *temporal*: input
arrival ordering margins (Sec. II-B / IV) that nominal-delay simulation
never stresses.  This package perturbs netlists the way silicon does —
process variation on gate delays, stuck-at defects, transient glitch
pulses (SETs), clock jitter — as deterministic, seeded transforms that
return a perturbed *copy* of the circuit, and sweeps those
perturbations against both the static ordering checker and full TVLA
campaigns to locate the margin at which the gadgets start leaking.

* :mod:`repro.faults.models` — the fault transforms.
* :mod:`repro.faults.sweep` — the margin-erosion sweep (delay-variation
  sigma vs. ``max|t|`` with a first-violated-constraint report).
"""

from .models import (
    FAULT_STREAM,
    clock_jitter_periods,
    delay_unit_vector,
    delay_variation,
    glitch_events,
    perturbed_engine,
    shift_gate_delay,
    stuck_at,
    transient_glitch,
)
from .sweep import (
    FaultSweepPoint,
    FaultSweepResult,
    PDBankSource,
    build_pd_bank,
    des_margin_erosion,
    margin_erosion_sweep,
)

__all__ = [
    "FAULT_STREAM",
    "clock_jitter_periods",
    "delay_unit_vector",
    "delay_variation",
    "glitch_events",
    "perturbed_engine",
    "shift_gate_delay",
    "stuck_at",
    "transient_glitch",
    "FaultSweepPoint",
    "FaultSweepResult",
    "PDBankSource",
    "build_pd_bank",
    "des_margin_erosion",
    "margin_erosion_sweep",
]
