"""Deterministic, seeded fault models over gate-level netlists.

Each transform takes a :class:`~repro.netlist.circuit.Circuit` and
returns a perturbed **copy** built with :meth:`Circuit.copy`: the
original netlist is never touched, and the copy carries fresh caches,
so the compiled-schedule cache of :mod:`repro.sim.compiled` (keyed on
:meth:`Circuit.structural_token`, which fingerprints per-gate delays)
can never serve a stale schedule for the perturbed build.

All randomness is drawn from ``default_rng([seed, FAULT_STREAM...])``
— a sub-stream disjoint from the campaign streams
``default_rng([seed, batch_index])`` — so fault draws are reproducible
and never collide with acquisition randomness.

Common-random-numbers design
----------------------------
:func:`delay_variation` draws one *unit* perturbation per gate from the
seed alone and scales it by ``sigma_ps``.  Sweeping sigma with a fixed
seed therefore moves every gate delay linearly along a fixed direction:
arrival-time margins erode (piecewise-)linearly and monotonically in
sigma, which is what makes the margin-erosion sweep of
:mod:`repro.faults.sweep` a well-posed "at which sigma does the design
break" question instead of a noisy re-randomised experiment.
"""

from __future__ import annotations

import copy as _copy
from dataclasses import replace as _gate_replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..netlist.cells import CellType
from ..netlist.circuit import Circuit, Gate

__all__ = [
    "FAULT_STREAM",
    "delay_variation",
    "delay_unit_vector",
    "shift_gate_delay",
    "stuck_at",
    "transient_glitch",
    "glitch_events",
    "clock_jitter_periods",
    "perturbed_engine",
]

#: Sub-stream key mixed into every fault RNG seed.  Campaign batches
#: draw from ``default_rng([seed, batch_index])`` with small indices;
#: this constant keeps the fault streams disjoint from all of them.
FAULT_STREAM = 0xFA017


def _resolve_wire(circuit: Circuit, wire: Union[int, str]) -> int:
    if isinstance(wire, str):
        return circuit.wire(wire)
    if not 0 <= int(wire) < circuit.n_wires:
        raise ValueError(f"wire id {wire} does not exist in {circuit.name!r}")
    return int(wire)


# ----------------------------------------------------------------------
# delay variation (process variation / voltage-temperature drift)
# ----------------------------------------------------------------------
def delay_unit_vector(
    circuit: Circuit, seed: int = 0, distribution: str = "gaussian"
) -> np.ndarray:
    """Per-gate unit perturbation (one draw per gate, seed-only).

    The vector depends on the seed and gate count alone — *not* on
    sigma — so :func:`delay_variation` applies common random numbers
    across a sigma sweep.
    """
    rng = np.random.default_rng([int(seed), FAULT_STREAM])
    n = len(circuit.gates)
    if distribution == "gaussian":
        return rng.standard_normal(n)
    if distribution == "uniform":
        return rng.uniform(-1.0, 1.0, size=n)
    raise ValueError("distribution must be 'gaussian' or 'uniform'")


def delay_variation(
    circuit: Circuit,
    sigma_ps: float,
    seed: int = 0,
    distribution: str = "gaussian",
    min_delay_ps: float = 1.0,
    cells: Optional[Sequence[str]] = None,
) -> Circuit:
    """Per-gate delay variation: ``delay += sigma_ps * unit_draw``.

    Args:
        circuit: Netlist to perturb (untouched).
        sigma_ps: Variation scale in picoseconds.  ``0`` returns an
            unperturbed copy (still with fresh caches).
        seed: Fault seed; the same seed gives the same perturbation
            *direction* at every sigma (common random numbers).
        distribution: ``"gaussian"`` (standard-normal draws) or
            ``"uniform"`` (draws in [-1, 1]).
        min_delay_ps: Floor applied after perturbation — a physical
            gate never has non-positive delay.
        cells: Restrict the perturbation to these cell names (e.g.
            ``("DELAY",)`` to stress only the DelayUnit routes);
            ``None`` perturbs every combinational gate.

    Returns:
        The perturbed copy.  Flip-flops are never touched (their timing
        lives in the clocking harness, see :func:`clock_jitter_periods`).
    """
    if sigma_ps < 0:
        raise ValueError("sigma_ps must be >= 0")
    unit = delay_unit_vector(circuit, seed=seed, distribution=distribution)
    new = circuit.copy()
    only = None if cells is None else frozenset(cells)
    gates = new.gates
    for gi, g in enumerate(gates):
        if g.is_ff:
            continue
        if only is not None and g.cell.name not in only:
            continue
        d = max(float(min_delay_ps), g.delay_ps + float(sigma_ps) * float(unit[gi]))
        if d != g.delay_ps:
            gates[gi] = _gate_replace(g, delay_ps=d)
    return new


def shift_gate_delay(
    circuit: Circuit,
    gate_name: str,
    delta_ps: float,
    min_delay_ps: float = 0.0,
) -> Circuit:
    """Shift one named gate's delay by ``delta_ps`` (targeted fault).

    Useful for collapsing a *specific* ordering margin — e.g. shrink a
    secAND2-PD ``y1`` DelayUnit past the x-share arrivals and watch the
    static checker and TVLA agree that exactly that gadget broke.
    """
    new = circuit.copy()
    for gi, g in enumerate(new.gates):
        if g.name == gate_name:
            if g.is_ff:
                raise ValueError(
                    f"gate {gate_name!r} is sequential; FF timing is a "
                    "harness property (see clock_jitter_periods)"
                )
            d = max(float(min_delay_ps), g.delay_ps + float(delta_ps))
            new.gates[gi] = _gate_replace(g, delay_ps=d)
            return new
    raise ValueError(f"no gate named {gate_name!r} in {circuit.name!r}")


# ----------------------------------------------------------------------
# stuck-at defects
# ----------------------------------------------------------------------
def _eval_stuck0(*ins: np.ndarray) -> np.ndarray:
    return np.zeros_like(ins[0])


def _eval_stuck1(*ins: np.ndarray) -> np.ndarray:
    return np.ones_like(ins[0])


_STUCK_CELLS: Dict[Tuple[bool, int], CellType] = {}


def _stuck_cell(value: bool, n_inputs: int) -> CellType:
    key = (bool(value), int(n_inputs))
    ct = _STUCK_CELLS.get(key)
    if ct is None:
        ct = CellType(
            f"STUCK{int(value)}",
            int(n_inputs),
            0,
            0.0,
            _eval_stuck1 if value else _eval_stuck0,
        )
        _STUCK_CELLS[key] = ct
    return ct


def stuck_at(circuit: Circuit, wire: Union[int, str], value: bool) -> Circuit:
    """Pin a gate-driven wire to a constant 0 or 1.

    The driving gate is replaced by a constant cell that keeps the
    original input pins (so it re-evaluates on the same triggers) but
    always outputs ``value``.  The constant takes effect at the gate's
    first evaluation — the zero-delay reset evaluation for sources that
    settle the reset state, or the first input event otherwise; after
    that the wire never toggles again (a stuck net contributes no
    switching power).

    Primary inputs have no driving gate — fault them by driving the
    stuck value as a stimulus.  FF outputs are rejected too: fault the
    D-pin driver instead.
    """
    w = _resolve_wire(circuit, wire)
    new = circuit.copy()
    for gi, g in enumerate(new.gates):
        if g.output == w:
            break
    else:
        raise ValueError(
            f"wire {circuit.wire_name(w)!r} has no driving gate (primary "
            "input or floating); drive the stuck value as a stimulus"
        )
    if g.is_ff:
        raise ValueError(
            f"wire {circuit.wire_name(w)!r} is an FF output; apply the "
            "stuck-at to the gate driving its D pin instead"
        )
    new.gates[gi] = _gate_replace(g, cell=_stuck_cell(value, len(g.inputs)))
    return new


# ----------------------------------------------------------------------
# transient glitch pulses (single-event transients)
# ----------------------------------------------------------------------
def transient_glitch(
    circuit: Circuit, wire: Union[int, str], tag: str = "set"
) -> Tuple[Circuit, int]:
    """Instrument a wire with an XOR-splice SET injection site.

    A fresh primary input (the *pulse*) is XORed onto ``wire`` through
    a zero-delay gate; every reader of the wire (and any primary output
    mapped to it) is rewired to the spliced net.  While the pulse is
    low the circuit behaves identically; raising it for a bounded
    window (see :func:`glitch_events`) inverts the wire for exactly
    that window — a transient glitch pulse at a chosen net and time.

    Returns:
        ``(perturbed copy, pulse input wire id)``.
    """
    w = _resolve_wire(circuit, wire)
    new = circuit.copy()
    pulse = new.add_input(f"{tag}_pulse")
    injected = new.add_wire(f"{tag}_site")
    for gi, g in enumerate(new.gates):
        if w in g.inputs:
            new.gates[gi] = _gate_replace(
                g, inputs=tuple(injected if x == w else x for x in g.inputs)
            )
    for name, out_w in list(new.outputs.items()):
        if out_w == w:
            new.outputs[name] = injected
    new.add_gate("XOR2", [w, pulse], output=injected, name=f"{tag}_xor", delay_ps=0)
    return new, pulse


def glitch_events(
    pulse_wire: int,
    t_ps: int,
    width_ps: int,
    mask: Optional[np.ndarray] = None,
) -> List[Tuple[int, int, "np.ndarray | bool"]]:
    """Input events arming a SET pulse: rise at ``t_ps``, fall after
    ``width_ps``.  ``mask`` selects the traces that receive the pulse
    (default: all)."""
    if width_ps <= 0:
        raise ValueError("width_ps must be positive")
    if mask is None:
        return [(int(t_ps), pulse_wire, True), (int(t_ps + width_ps), pulse_wire, False)]
    m = np.asarray(mask, dtype=bool)
    return [
        (int(t_ps), pulse_wire, m),
        (int(t_ps + width_ps), pulse_wire, np.zeros_like(m)),
    ]


# ----------------------------------------------------------------------
# clock-period jitter
# ----------------------------------------------------------------------
def clock_jitter_periods(
    period_ps: int,
    n_cycles: int,
    sigma_ps: float,
    seed: int = 0,
    distribution: str = "gaussian",
    min_period_ps: int = 1,
) -> List[int]:
    """Per-cycle clock periods under jitter, for
    :class:`~repro.sim.clocking.ClockedHarness`'s ``period_schedule``.

    Cycle ``i`` lasts ``period_ps + sigma_ps * draw_i`` (floored at
    ``min_period_ps`` and rounded to integer picoseconds).  A shrunken
    cycle can cut into the settle window of slow paths — with timing
    checks enabled the harness reports exactly which cycle's period was
    violated.
    """
    if n_cycles < 0:
        raise ValueError("n_cycles must be >= 0")
    if sigma_ps < 0:
        raise ValueError("sigma_ps must be >= 0")
    rng = np.random.default_rng([int(seed), FAULT_STREAM, 1])
    if distribution == "gaussian":
        draws = rng.standard_normal(n_cycles)
    elif distribution == "uniform":
        draws = rng.uniform(-1.0, 1.0, size=n_cycles)
    else:
        raise ValueError("distribution must be 'gaussian' or 'uniform'")
    return [
        max(int(min_period_ps), int(round(period_ps + sigma_ps * float(d))))
        for d in draws
    ]


# ----------------------------------------------------------------------
# engine adaptation
# ----------------------------------------------------------------------
def perturbed_engine(engine, sigma_ps: float, seed: int = 0, **kwargs):
    """Shallow-copy a netlist engine with a delay-perturbed circuit.

    Works for any object exposing a ``circuit`` attribute whose other
    state (period, cycle counts, wire-id references) stays valid for a
    delay-only perturbation — e.g.
    :class:`~repro.des.engines.MaskedDESNetlistEngine`.  Extra keyword
    arguments are forwarded to :func:`delay_variation`.
    """
    eng = _copy.copy(engine)
    eng.circuit = delay_variation(engine.circuit, sigma_ps, seed=seed, **kwargs)
    return eng
