"""Reference PRESENT-80 block cipher (Bogdanov et al., CHES 2007).

PRESENT is the paper's conclusion in cipher form: an ultra-lightweight
algorithm "for applications such as smart cards or RFID, which do not
require fast clock frequencies" — precisely where the secAND2-PD
engine's low latency at modest fmax pays off.  Its single 4-bit S-box
has algebraic degree 3, the same shape as the DES mini S-boxes, so the
whole gadget/composition machinery of this library applies unchanged.

Scalar and vectorised implementations, validated against the published
test vectors.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..des.bits import int_to_bitarray

__all__ = [
    "SBOX",
    "SBOX_INV",
    "PLAYER",
    "N_ROUNDS",
    "round_keys80",
    "present_encrypt",
    "present_decrypt",
    "present_encrypt_bits",
]

#: The PRESENT S-box (a 4-bit permutation of degree 3).
SBOX = (0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD,
        0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2)
SBOX_INV = tuple(SBOX.index(v) for v in range(16))

#: Bit permutation: output position of input bit i (LSB-first, spec
#: convention P(i) = 16*i mod 63 for i < 63, P(63) = 63).
PLAYER = tuple((16 * i) % 63 if i != 63 else 63 for i in range(64))

N_ROUNDS = 31


def round_keys80(key80: int) -> List[int]:
    """The 32 round keys of an 80-bit key."""
    keys = []
    state = key80
    for rnd in range(1, N_ROUNDS + 2):
        keys.append(state >> 16)  # leftmost 64 bits
        # rotate left 61
        state = ((state << 61) | (state >> 19)) & ((1 << 80) - 1)
        # S-box on the top nibble
        top = SBOX[(state >> 76) & 0xF]
        state = (state & ~(0xF << 76)) | (top << 76)
        # XOR round counter into bits 19..15
        state ^= rnd << 15
    return keys


def _sbox_layer(state: int) -> int:
    out = 0
    for nib in range(16):
        out |= SBOX[(state >> (4 * nib)) & 0xF] << (4 * nib)
    return out


def _player(state: int) -> int:
    out = 0
    for i in range(64):
        out |= ((state >> i) & 1) << PLAYER[i]
    return out


def present_encrypt(plaintext64: int, key80: int) -> int:
    """Encrypt one 64-bit block under an 80-bit key."""
    keys = round_keys80(key80)
    state = plaintext64
    for rnd in range(N_ROUNDS):
        state ^= keys[rnd]
        state = _sbox_layer(state)
        state = _player(state)
    return state ^ keys[N_ROUNDS]


def present_decrypt(ciphertext64: int, key80: int) -> int:
    """Decrypt one 64-bit block."""
    keys = round_keys80(key80)
    state = ciphertext64 ^ keys[N_ROUNDS]
    inv_player = [0] * 64
    for i, p in enumerate(PLAYER):
        inv_player[p] = i
    for rnd in range(N_ROUNDS - 1, -1, -1):
        out = 0
        for i in range(64):
            out |= ((state >> i) & 1) << inv_player[i]
        state = out
        nibbles = 0
        for nib in range(16):
            nibbles |= SBOX_INV[(state >> (4 * nib)) & 0xF] << (4 * nib)
        state = nibbles ^ keys[rnd]
    return state


# ----------------------------------------------------------------------
_SBOX_ARR = np.array(SBOX, dtype=np.uint64)


def present_encrypt_bits(
    plain: np.ndarray, key80: np.ndarray
) -> np.ndarray:
    """Vectorised PRESENT over (n,) uint64 plaintexts / object keys.

    Args:
        plain: (n,) uint64 plaintext blocks.
        key80: (n,) array of Python ints (80-bit keys).

    Returns:
        (n,) uint64 ciphertexts.
    """
    return np.array(
        [
            present_encrypt(int(p), int(k))
            for p, k in zip(plain.tolist(), key80.tolist())
        ],
        dtype=np.uint64,
    )
