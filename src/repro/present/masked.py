"""First-order masked PRESENT-80 built from the paper's gadgets.

Demonstrates that the secAND2 gadget + composition rules generalise
beyond DES: the PRESENT S-box is a single 4-bit permutation of degree 3
— structurally identical to a DES mini S-box — so the AND-stage /
refresh / XOR-stage recipe of Sec. IV applies verbatim:

* compute the (at most 6+4) shared product terms with secAND2
  (degree-3 terms chained on degree-2 products, Fig. 4/6),
* refresh each used product with a fresh bit before the XOR plane
  (Sec. III-C),
* evaluate the linear layer share-wise.

Provides the share-level full cipher (masked datapath *and* masked key
schedule — the schedule's S-box step is nonlinear) and gate-level
netlist builders for the masked S-box in both FF and PD styles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.gadgets import SharePair, refresh, secand2, secand2_ff, secand2_func
from ..des.sbox_anf import ALL_MONOMIALS, mobius_transform
from ..leakage.prng import RandomnessSource
from ..netlist.cells import DELAY_UNIT_DEFAULT_LUTS
from ..netlist.circuit import Circuit
from .reference import N_ROUNDS, PLAYER, SBOX

__all__ = [
    "Masked4BitSbox",
    "MaskedPresent",
    "build_present_sbox_ff",
    "build_present_sbox_pd",
]

_ShareVec = Tuple[np.ndarray, np.ndarray]


def _mand(x: _ShareVec, y: _ShareVec) -> _ShareVec:
    z0, z1 = secand2_func(x[0], x[1], y[0], y[1])
    return z0, z1


@dataclass(frozen=True)
class _SboxANF:
    """ANF of a 4-bit permutation, bit order MSB-first (x1..x4)."""

    constants: Tuple[int, ...]
    linear: Tuple[Tuple[int, ...], ...]
    products: Tuple[Tuple[int, ...], ...]
    monomials: Tuple[int, ...]

    @classmethod
    def of(cls, table: Sequence[int]) -> "_SboxANF":
        constants, linear, products = [], [], []
        used = set()
        for bit in range(4):
            tt = [(table[c] >> (3 - bit)) & 1 for c in range(16)]
            coeffs = mobius_transform(tt)
            if coeffs[0b1111]:
                raise ValueError("degree-4 term: table is not a permutation")
            constants.append(coeffs[0])
            linear.append(tuple(i for i in range(4) if coeffs[8 >> i]))
            prods = tuple(m for m in ALL_MONOMIALS if coeffs[m])
            products.append(prods)
            used.update(prods)
        monomials = tuple(m for m in ALL_MONOMIALS if m in used)
        return cls(
            tuple(constants), tuple(linear), tuple(products), monomials
        )

    def deg3_factorisation(self, mask: int) -> Tuple[int, int]:
        vars_in = [i for i in range(4) if mask & (8 >> i)]
        for extra in reversed(vars_in):
            d2 = mask & ~(8 >> extra)
            if d2 in self.monomials:
                return d2, extra
        return mask & ~(8 >> vars_in[-1]), vars_in[-1]


class Masked4BitSbox:
    """Generic first-order masked 4-bit S-box (share-level).

    Works for any 4-bit permutation of degree <= 3; consumes one fresh
    bit per nonlinear monomial the ANF actually uses.
    """

    def __init__(self, table: Sequence[int]):
        if sorted(table) != list(range(16)):
            raise ValueError("table must be a 4-bit permutation")
        self.table = tuple(table)
        self.anf = _SboxANF.of(table)
        # degree-2 products needed as chain bases for degree-3 terms
        extra_deg2 = set()
        for m in self.anf.monomials:
            if bin(m).count("1") == 3:
                d2, _ = self.anf.deg3_factorisation(m)
                extra_deg2.add(d2)
        self.computed = tuple(
            m
            for m in ALL_MONOMIALS
            if m in self.anf.monomials or m in extra_deg2
        )

    @property
    def random_bits(self) -> int:
        """Fresh bits consumed per evaluation (refresh of used terms)."""
        return len(self.anf.monomials)

    def __call__(
        self, x_s0: np.ndarray, x_s1: np.ndarray, rand: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Evaluate on (4, n) share matrices (MSB-first bit order)."""
        n = x_s0.shape[1]
        xs = [(x_s0[i], x_s1[i]) for i in range(4)]
        products: Dict[int, _ShareVec] = {}
        for m in self.computed:
            if bin(m).count("1") == 2:
                i, j = [k for k in range(4) if m & (8 >> k)]
                products[m] = _mand(xs[i], xs[j])
        for m in self.computed:
            if bin(m).count("1") == 3:
                d2, extra = self.anf.deg3_factorisation(m)
                products[m] = _mand(products[d2], xs[extra])
        refreshed = {
            m: (products[m][0] ^ rand[k], products[m][1] ^ rand[k])
            for k, m in enumerate(self.anf.monomials)
        }
        out0 = np.zeros((4, n), dtype=bool)
        out1 = np.zeros((4, n), dtype=bool)
        for b in range(4):
            acc0 = np.full(n, bool(self.anf.constants[b]))
            acc1 = np.zeros(n, dtype=bool)
            for v in self.anf.linear[b]:
                acc0 = acc0 ^ xs[v][0]
                acc1 = acc1 ^ xs[v][1]
            for m in self.anf.products[b]:
                acc0 = acc0 ^ refreshed[m][0]
                acc1 = acc1 ^ refreshed[m][1]
            out0[b], out1[b] = acc0, acc1
        return out0, out1


def _int_to_bits_lsb(values: np.ndarray, width: int) -> np.ndarray:
    """(width, n) boolean matrix, row i = bit i (LSB-first)."""
    shifts = np.arange(width, dtype=np.uint64)
    return ((values[None, :] >> shifts[:, None]) & np.uint64(1)).astype(bool)


def _bits_to_int_lsb(bits: np.ndarray) -> np.ndarray:
    out = np.zeros(bits.shape[1], dtype=np.uint64)
    for i in range(bits.shape[0] - 1, -1, -1):
        out = (out << np.uint64(1)) | bits[i].astype(np.uint64)
    return out


class MaskedPresent:
    """Share-level first-order masked PRESENT-80.

    Masked datapath and masked key schedule; the per-round refresh
    randomness is recycled across the sixteen S-boxes (the paper's
    Sec. VI-A choice for DES), so the engine consumes
    ``sbox.random_bits`` fresh bits per round plus the same for the key
    schedule's single S-box.
    """

    def __init__(self, recycle_randomness: bool = True):
        self.sbox = Masked4BitSbox(SBOX)
        self.recycle_randomness = recycle_randomness

    @property
    def random_bits_per_round(self) -> int:
        k = self.sbox.random_bits
        return (k if self.recycle_randomness else 16 * k) + k

    def _sbox_layer(
        self, s0: np.ndarray, s1: np.ndarray, prng: RandomnessSource
    ) -> Tuple[np.ndarray, np.ndarray]:
        n = s0.shape[1]
        o0 = np.zeros_like(s0)
        o1 = np.zeros_like(s1)
        rand = prng.bits(self.sbox.random_bits, n)
        for nib in range(16):
            if not self.recycle_randomness:
                rand = prng.bits(self.sbox.random_bits, n)
            # bits of nibble, MSB-first for the S-box model
            rows = [4 * nib + 3, 4 * nib + 2, 4 * nib + 1, 4 * nib]
            a0 = np.stack([s0[r] for r in rows])
            a1 = np.stack([s1[r] for r in rows])
            b0, b1 = self.sbox(a0, a1, rand)
            for k, r in enumerate(rows):
                o0[r] = b0[k]
                o1[r] = b1[k]
        return o0, o1

    def _player(self, s: np.ndarray) -> np.ndarray:
        out = np.zeros_like(s)
        for i in range(64):
            out[PLAYER[i]] = s[i]
        return out

    def encrypt_shares(
        self,
        pt_s0: np.ndarray,
        pt_s1: np.ndarray,
        key_s0: np.ndarray,
        key_s1: np.ndarray,
        prng: RandomnessSource,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(64, n) state shares, (80, n) key shares, LSB-first rows."""
        n = pt_s0.shape[1]
        s0, s1 = pt_s0.copy(), pt_s1.copy()
        k0, k1 = key_s0.copy(), key_s1.copy()
        for rnd in range(1, N_ROUNDS + 1):
            # addRoundKey: leftmost 64 key bits (bits 16..79)
            s0 ^= k0[16:]
            s1 ^= k1[16:]
            s0, s1 = self._sbox_layer(s0, s1, prng)
            s0, s1 = self._player(s0), self._player(s1)
            # key schedule: rotate left 61, S-box on top nibble,
            # counter XOR (affine: applied to share 0)
            k0 = np.roll(k0, 61, axis=0)
            k1 = np.roll(k1, 61, axis=0)
            rows = [79, 78, 77, 76]
            a0 = np.stack([k0[r] for r in rows])
            a1 = np.stack([k1[r] for r in rows])
            rand = prng.bits(self.sbox.random_bits, n)
            b0, b1 = self.sbox(a0, a1, rand)
            for t, r in enumerate(rows):
                k0[r] = b0[t]
                k1[r] = b1[t]
            for b in range(5):
                if (rnd >> b) & 1:
                    k0[15 + b] = ~k0[15 + b]
        s0 ^= k0[16:]
        s1 ^= k1[16:]
        return s0, s1

    def encrypt(
        self,
        plaintexts: np.ndarray,
        keys: Sequence[int],
        prng: RandomnessSource,
    ) -> np.ndarray:
        """Mask, encrypt, unmask: (n,) uint64 in/out."""
        n = plaintexts.shape[0]
        pt_bits = _int_to_bits_lsb(plaintexts.astype(np.uint64), 64)
        key_bits = np.zeros((80, n), dtype=bool)
        for t, k in enumerate(keys):
            for b in range(80):
                key_bits[b, t] = bool((int(k) >> b) & 1)
        pm = prng.bits(64, n)
        km = prng.bits(80, n)
        c0, c1 = self.encrypt_shares(
            pt_bits ^ pm, pm, key_bits ^ km, km, prng
        )
        return _bits_to_int_lsb(c0 ^ c1)


# ----------------------------------------------------------------------
# gate-level masked PRESENT S-box (FF and PD styles)
# ----------------------------------------------------------------------
def _netlist_sbox(
    c: Circuit,
    ins: Sequence[SharePair],
    rand: Sequence[int],
    model: Masked4BitSbox,
    and_stage,
    tag: str,
) -> List[SharePair]:
    anf = model.anf
    products: Dict[int, SharePair] = {}
    for m in model.computed:
        if bin(m).count("1") == 2:
            i, j = [k for k in range(4) if m & (8 >> k)]
            products[m] = and_stage(ins[i], ins[j], f"{tag}_p{m:x}", 2)
    for m in model.computed:
        if bin(m).count("1") == 3:
            d2, extra = anf.deg3_factorisation(m)
            products[m] = and_stage(products[d2], ins[extra], f"{tag}_p{m:x}", 3)
    refreshed = {
        m: refresh(c, products[m], rand[k], tag=f"{tag}_ref{m:x}")
        for k, m in enumerate(anf.monomials)
    }
    outs: List[SharePair] = []
    for b in range(4):
        t0 = [ins[v].s0 for v in anf.linear[b]]
        t1 = [ins[v].s1 for v in anf.linear[b]]
        t0 += [refreshed[m].s0 for m in anf.products[b]]
        t1 += [refreshed[m].s1 for m in anf.products[b]]
        s0 = c.xor_tree(t0, name=f"{tag}_o{b}s0")
        s1 = c.xor_tree(t1, name=f"{tag}_o{b}s1")
        if anf.constants[b]:
            s0 = c.inv(s0, name=f"{tag}_o{b}c")
        outs.append(SharePair(s0, s1))
    return outs


def build_present_sbox_ff(
    c: Circuit,
    ins: Sequence[SharePair],
    rand: Sequence[int],
    en_deg2: int,
    en_deg3: int,
    tag: str = "psb",
) -> List[SharePair]:
    """Masked PRESENT S-box with secAND2-FF gadgets (layered enables).

    ``rand`` must provide one wire per used monomial
    (``Masked4BitSbox(SBOX).random_bits``).
    """
    model = Masked4BitSbox(SBOX)

    def and_stage(x, y, t, degree):
        en = en_deg2 if degree == 2 else en_deg3
        return secand2_ff(c, x, y, enable=en, tag=t)

    return _netlist_sbox(c, ins, rand, model, and_stage, tag)


def build_present_sbox_pd(
    c: Circuit,
    ins: Sequence[SharePair],
    rand: Sequence[int],
    n_luts: int = DELAY_UNIT_DEFAULT_LUTS,
    tag: str = "psb",
) -> Tuple[List[SharePair], List[SharePair]]:
    """Masked PRESENT S-box with secAND2-PD (shared staggered delays).

    Uses the same generalised Table II schedule as the DES mini S-box:
    ``x4_s0(0) .. x1(3,3) .. x4_s1(6)`` DelayUnits on the four input
    share pairs.

    Returns:
        ``(outputs, delayed_inputs)``.
    """
    from ..des.masked_netlist import PD_MINI_SCHEDULE

    model = Masked4BitSbox(SBOX)
    delayed: List[SharePair] = []
    for v in range(4):
        u0, u1 = PD_MINI_SCHEDULE[v]
        delayed.append(
            SharePair(
                c.delay_line(ins[v].s0, u0, n_luts, name=f"{tag}_dl{v}s0"),
                c.delay_line(ins[v].s1, u1, n_luts, name=f"{tag}_dl{v}s1"),
            )
        )

    def and_stage(x, y, t, degree):
        return secand2(c, x, y, tag=t)

    outs = _netlist_sbox(c, delayed, rand, model, and_stage, tag)
    return outs, delayed
