"""PRESENT-80 case study: the gadget library beyond DES.

The paper positions secAND2-PD for "smart cards or RFID" — PRESENT is
the standard ultra-lightweight cipher for exactly that domain, and its
4-bit degree-3 S-box is structurally a DES mini S-box, so the masking
recipe of Sec. IV transfers unchanged.
"""

from .reference import (
    N_ROUNDS,
    PLAYER,
    SBOX,
    SBOX_INV,
    present_decrypt,
    present_encrypt,
    present_encrypt_bits,
    round_keys80,
)
from .masked import (
    Masked4BitSbox,
    MaskedPresent,
    build_present_sbox_ff,
    build_present_sbox_pd,
)

__all__ = [
    "N_ROUNDS",
    "PLAYER",
    "SBOX",
    "SBOX_INV",
    "present_decrypt",
    "present_encrypt",
    "present_encrypt_bits",
    "round_keys80",
    "Masked4BitSbox",
    "MaskedPresent",
    "build_present_sbox_ff",
    "build_present_sbox_pd",
]
