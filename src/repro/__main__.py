"""Command-line entry point: ``python -m repro <experiment...>``.

Runs the paper experiments (same registry as
``examples/reproduce_paper.py``) or prints the registry.

Examples::

    python -m repro --list
    python -m repro table3
    python -m repro table1 fig14 --quick
    python -m repro verify --preset secand2_pd
    python -m repro compile --des-sbox 0
    python -m repro chaos --mode corrupt_checkpoint
    python -m repro obs record --out trace.jsonl

``verify``, ``compile``, ``chaos`` and ``obs`` are subcommands with
their own flags (:mod:`repro.verify.cli`, :mod:`repro.compile.cli`,
:mod:`repro.chaos.cli`, :mod:`repro.obs.cli`); everything else is an
experiment id.
"""

from __future__ import annotations

import argparse
import sys
import time

from .eval import EXPERIMENTS, fig14, fig15, fig17, table1, table2, table3, traces
from .eval.report import rule

_QUICK_KWARGS = {
    "table1": dict(
        n_traces=10_000,
        sequences=[("y0", "y1", "x1", "x0"), ("x0", "x1", "y0", "y1")],
    ),
    "table2": dict(n_traces=12_000),
    "table3": dict(),
    "fig13": dict(n_traces=16),
    "fig16": dict(n_traces=16),
    "fig14": dict(n_traces=6_000, n_traces_off=3_000),
    "fig15": dict(sizes=(1, 5, 10), n_traces=5_000, extended_sizes=()),
    "fig17": dict(n_traces=8_000, n_traces_off=3_000, coupling_coefficient=5.0),
    "fault_sweep": dict(
        sigmas=(0, 300, 600), n_traces=3_000, include_des=False
    ),
    "bench": dict(quick=True),
}


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "verify":
        from .verify.cli import main as verify_main

        return verify_main(argv[1:])
    if argv and argv[0] == "compile":
        from .compile.cli import main as compile_main

        return compile_main(argv[1:])
    if argv and argv[0] == "chaos":
        from .chaos.cli import main as chaos_main

        return chaos_main(argv[1:])
    if argv and argv[0] == "obs":
        from .obs.cli import main as obs_main

        return obs_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__
    )
    parser.add_argument("experiments", nargs="*", help="experiment ids")
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument("--quick", action="store_true", help="smoke budgets")
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        print("available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        print("  verify  (subcommand: python -m repro verify --help)")
        print("  compile (subcommand: python -m repro compile --help)")
        print("  chaos   (subcommand: python -m repro chaos --help)")
        print("  obs     (subcommand: python -m repro obs --help)")
        return 0

    for name in args.experiments:
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; use --list", file=sys.stderr)
            return 2
        print(rule())
        print(f"# {name}")
        print(rule())
        t0 = time.time()
        kwargs = _QUICK_KWARGS[name] if args.quick else {}
        result = EXPERIMENTS[name](**kwargs)
        print(result.render())
        print(f"[{name}: {time.time() - t0:.0f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
