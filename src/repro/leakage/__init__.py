"""Side-channel leakage assessment: TVLA, acquisition harness, SNR, PRNG."""

from .tvla import (
    THRESHOLD,
    TTestAccumulator,
    TvlaResult,
    consistent_leakage,
    threshold_crossings,
    welch_t,
)
from .acquisition import (
    CampaignBatchError,
    CampaignConfig,
    TraceSource,
    detect_leakage_traces,
    run_campaign,
    run_multi_fixed,
)
from .resilient import load_checkpoint, run_campaign_resilient, save_checkpoint
from .snr import snr
from .prng import RandomnessSource

__all__ = [
    "THRESHOLD",
    "TTestAccumulator",
    "TvlaResult",
    "consistent_leakage",
    "threshold_crossings",
    "welch_t",
    "CampaignBatchError",
    "CampaignConfig",
    "TraceSource",
    "detect_leakage_traces",
    "load_checkpoint",
    "run_campaign",
    "run_campaign_resilient",
    "run_multi_fixed",
    "save_checkpoint",
    "snr",
    "RandomnessSource",
]
