"""Side-channel leakage assessment: TVLA, acquisition harness, SNR, PRNG."""

from .tvla import (
    THRESHOLD,
    TTestAccumulator,
    TvlaResult,
    consistent_leakage,
    threshold_crossings,
    welch_t,
)
from .acquisition import (
    CampaignBatchError,
    CampaignConfig,
    OversubscriptionWarning,
    TraceSource,
    detect_leakage_traces,
    resolve_n_workers,
    run_campaign,
    run_multi_fixed,
    suggest_batch_size,
)
from .stats import BatchRecord, CampaignStats
from .transport import (
    SHM_THRESHOLD_BYTES,
    TRANSPORTS,
    SharedTraceBuffer,
    ShardPayload,
    pack_shard,
    resolve_transport,
    shared_memory_available,
    unpack_shard,
)
from .resilient import (
    load_checkpoint,
    quarantine_checkpoint,
    run_campaign_resilient,
    save_checkpoint,
    validate_runner_args,
)
from .supervisor import (
    CampaignInterrupted,
    SupervisorCheckpoint,
    load_checkpoint_supervised,
    run_campaign_supervised,
    save_checkpoint_supervised,
)
from .snr import snr
from .prng import RandomnessSource

__all__ = [
    "THRESHOLD",
    "TTestAccumulator",
    "TvlaResult",
    "consistent_leakage",
    "threshold_crossings",
    "welch_t",
    "CampaignBatchError",
    "CampaignConfig",
    "OversubscriptionWarning",
    "TraceSource",
    "detect_leakage_traces",
    "resolve_n_workers",
    "run_campaign",
    "run_multi_fixed",
    "suggest_batch_size",
    "BatchRecord",
    "CampaignStats",
    "SHM_THRESHOLD_BYTES",
    "TRANSPORTS",
    "SharedTraceBuffer",
    "ShardPayload",
    "pack_shard",
    "resolve_transport",
    "shared_memory_available",
    "unpack_shard",
    "load_checkpoint",
    "quarantine_checkpoint",
    "run_campaign_resilient",
    "save_checkpoint",
    "validate_runner_args",
    "CampaignInterrupted",
    "SupervisorCheckpoint",
    "load_checkpoint_supervised",
    "run_campaign_supervised",
    "save_checkpoint_supervised",
    "snr",
    "RandomnessSource",
]
