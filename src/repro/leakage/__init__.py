"""Side-channel leakage assessment: TVLA, acquisition harness, SNR, PRNG."""

from .tvla import (
    THRESHOLD,
    TTestAccumulator,
    TvlaResult,
    consistent_leakage,
    threshold_crossings,
    welch_t,
)
from .acquisition import (
    CampaignConfig,
    TraceSource,
    detect_leakage_traces,
    run_campaign,
    run_multi_fixed,
)
from .snr import snr
from .prng import RandomnessSource

__all__ = [
    "THRESHOLD",
    "TTestAccumulator",
    "TvlaResult",
    "consistent_leakage",
    "threshold_crossings",
    "welch_t",
    "CampaignConfig",
    "TraceSource",
    "detect_leakage_traces",
    "run_campaign",
    "run_multi_fixed",
    "snr",
    "RandomnessSource",
]
