"""Randomness source for masked implementations.

All masks — the initial sharing of plaintext/key and the per-round
refresh bits — come from one :class:`RandomnessSource`.  It can be
switched **off**, in which case every "random" bit is zero: that is the
paper's PRNG-off sanity check (Figs. 14a and 17d), where the masked
core degenerates to an unmasked one and TVLA must light up within a few
thousand traces, proving the setup can detect leakage at all.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["RandomnessSource"]


class RandomnessSource:
    """Seeded PRNG with an on/off switch.

    Args:
        seed: Seed for reproducible campaigns.
        enabled: When False, all outputs are zero (sanity-check mode).
    """

    def __init__(self, seed: Optional[int] = None, enabled: bool = True):
        self._rng = np.random.default_rng(seed)
        self.enabled = enabled

    def bits(self, *shape: int) -> np.ndarray:
        """Boolean array of the given shape (all False when disabled)."""
        if not self.enabled:
            return np.zeros(shape, dtype=bool)
        return self._rng.integers(0, 2, size=shape, dtype=np.uint8).astype(bool)

    def bit(self, n: int) -> np.ndarray:
        """n random bits (one per trace)."""
        return self.bits(n)

    def words(self, n: int, width: int) -> np.ndarray:
        """(n,) uint64 array of ``width``-bit random words (0 if off)."""
        if width < 1 or width > 63:
            raise ValueError("width must be in 1..63")
        if not self.enabled:
            return np.zeros(n, dtype=np.uint64)
        return self._rng.integers(0, 1 << width, size=n, dtype=np.uint64)

    def spawn(self) -> "RandomnessSource":
        """Independent child source (same enabled flag)."""
        child = RandomnessSource(enabled=self.enabled)
        child._rng = np.random.default_rng(self._rng.integers(0, 2**63))
        return child
