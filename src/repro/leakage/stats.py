"""Campaign observability: where did the wall-clock time go?

The v1 parallel campaign shipped with a single number (a speedup in
``BENCH_simulator.json``) and no way to see *why* it was slow — which
is how a 0.92x "speedup" on a 1-core box went unnoticed.  Every
campaign runner now assembles a :class:`CampaignStats` and attaches it
to the returned :class:`~repro.leakage.tvla.TvlaResult`, recording

* the worker topology actually used (requested vs effective workers,
  the host's CPU count, the pool start method, oversubscription);
* per-batch wall time and the derived traces/second;
* shard-transport traffic (which transport, bytes through the result
  pipe);
* compile-vs-replay behaviour of the compiled-schedule cache
  (:func:`repro.sim.compiled.schedule_cache_counters` deltas measured
  inside the workers) — a warmed campaign must show batch-time
  ``schedule_compiles == 0``.

``as_dict()`` is JSON-ready (the bench harness embeds it in
``BENCH_simulator.json`` schema v2); ``summary()`` renders the
two-line reading used by the ``repro.eval`` reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["BatchRecord", "CampaignStats"]


@dataclass
class BatchRecord:
    """Timing and transport accounting of one acquired batch."""

    index: int
    n_traces: int
    seconds: float
    pipe_bytes: int = 0
    schedule_compiles: int = 0  #: schedule compiles during this batch
    schedule_replays: int = 0  #: schedule-cache hits during this batch
    clamped_events: int = 0  #: recorder clamp events during this batch
    #: Worker-side :mod:`repro.obs.metrics` snapshot diff of this batch
    #: (parallel runs only); consumed — merged into the parent registry
    #: and cleared — on receipt.  Serial batches leave it ``None``.
    metrics: Optional[Dict[str, object]] = None
    #: Worker-side span dicts of this batch (traced parallel runs
    #: only); consumed into the parent tracer on receipt.
    spans: Optional[List[dict]] = None


@dataclass
class CampaignStats:
    """Aggregated observability of one campaign run."""

    label: str = ""
    n_traces: int = 0
    batch_size: int = 0
    requested_workers: "int | str" = 1
    n_workers: int = 1
    cpu_count: int = 1
    oversubscribed: bool = False
    start_method: str = "serial"  #: "serial" | "fork" | "spawn" | ...
    transport: str = "none"
    wall_seconds: float = 0.0
    warmup_seconds: float = 0.0
    pool_rebuilds: int = 0  #: resilient runner: pool teardown/retry count
    restarts: int = 0  #: supervisor: times the campaign resumed from disk
    watchdog_kills: int = 0  #: supervisor: pools killed by the watchdog
    checkpoint_restores: int = 0  #: fallbacks to an older checkpoint generation
    checkpoints_quarantined: int = 0  #: corrupt checkpoint files set aside
    quarantined_batches: List[int] = field(default_factory=list)
    #: traces not acquired because their batch was quarantined
    skipped_traces: int = 0
    scavenged_segments: int = 0  #: orphaned shm segments reclaimed
    batches: List[BatchRecord] = field(default_factory=list)
    #: Per-phase timing histograms (``phase -> {count, total_s, min_s,
    #: max_s}``), attached by the runners when the campaign ran with
    #: tracing enabled (see :func:`repro.obs.summary.campaign_phases`);
    #: empty for untraced runs.
    phases: Dict[str, Dict[str, float]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def n_batches(self) -> int:
        return len(self.batches)

    @property
    def traces_per_second(self) -> float:
        """End-to-end campaign throughput (merged traces / wall time)."""
        done = sum(b.n_traces for b in self.batches)
        return done / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def pipe_bytes(self) -> int:
        """Total shard bytes through the pool's result pipe."""
        return sum(b.pipe_bytes for b in self.batches)

    @property
    def schedule_compiles(self) -> int:
        """Schedule compiles during batch acquisition (warm-up excluded)."""
        return sum(b.schedule_compiles for b in self.batches)

    @property
    def schedule_replays(self) -> int:
        """Schedule-cache hits during batch acquisition."""
        return sum(b.schedule_replays for b in self.batches)

    @property
    def clamped_events(self) -> int:
        """Recorder clamp events across all batches (see
        :class:`repro.sim.power.ClampedEventWarning`)."""
        return sum(b.clamped_events for b in self.batches)

    def batch_seconds(self) -> Dict[str, float]:
        """Min / median / max per-batch wall time."""
        times = sorted(b.seconds for b in self.batches)
        if not times:
            return {"min": 0.0, "median": 0.0, "max": 0.0}
        mid = len(times) // 2
        median = (
            times[mid]
            if len(times) % 2
            else 0.5 * (times[mid - 1] + times[mid])
        )
        return {"min": times[0], "median": median, "max": times[-1]}

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable summary (no per-batch list)."""
        return {
            "label": self.label,
            "n_traces": self.n_traces,
            "batch_size": self.batch_size,
            "n_batches": self.n_batches,
            "requested_workers": self.requested_workers,
            "n_workers": self.n_workers,
            "cpu_count": self.cpu_count,
            "oversubscribed": self.oversubscribed,
            "start_method": self.start_method,
            "transport": self.transport,
            "wall_seconds": self.wall_seconds,
            "warmup_seconds": self.warmup_seconds,
            "traces_per_second": self.traces_per_second,
            "pipe_bytes": self.pipe_bytes,
            "schedule_compiles": self.schedule_compiles,
            "schedule_replays": self.schedule_replays,
            "clamped_events": self.clamped_events,
            "pool_rebuilds": self.pool_rebuilds,
            "restarts": self.restarts,
            "watchdog_kills": self.watchdog_kills,
            "checkpoint_restores": self.checkpoint_restores,
            "checkpoints_quarantined": self.checkpoints_quarantined,
            "quarantined_batches": list(self.quarantined_batches),
            "skipped_traces": self.skipped_traces,
            "scavenged_segments": self.scavenged_segments,
            "batch_seconds": self.batch_seconds(),
            "phases": {k: dict(v) for k, v in self.phases.items()},
        }

    def reconcile(self, metrics_diff) -> Dict[str, Tuple[int, int]]:
        """Cross-check these counters against an obs metrics diff.

        ``metrics_diff`` is a :class:`repro.obs.metrics.MetricsSnapshot`
        (or its ``as_dict()``) diffed across the campaign run in the
        parent process.  Every counter here has exactly one registry
        metric behind it, so an undisturbed run must agree exactly;
        returns the mismatches as ``name -> (stats_value,
        metrics_value)`` — empty means fully reconciled.
        """
        counters = (
            metrics_diff.get("counters", {})
            if isinstance(metrics_diff, dict)
            else metrics_diff.counters
        )
        checks = {
            "pipe_bytes": (
                self.pipe_bytes, counters.get("transport.pipe_bytes", 0),
            ),
            "schedule_replays": (
                self.schedule_replays,
                counters.get("schedule_cache.hits", 0),
            ),
            "schedule_compiles": (
                self.schedule_compiles,
                counters.get("schedule_cache.compiles", 0),
            ),
            "clamped_events": (
                self.clamped_events, counters.get("power.clamped_events", 0),
            ),
            "restarts": (
                self.restarts, counters.get("supervisor.restarts", 0),
            ),
            "scavenged_segments": (
                self.scavenged_segments,
                counters.get("transport.scavenged_segments", 0),
            ),
        }
        return {
            name: (int(a), int(b))
            for name, (a, b) in checks.items()
            if int(a) != int(b)
        }

    def robustness_events(self) -> Dict[str, int]:
        """Non-zero recovery/cleanup counters of this campaign run.

        Empty for an undisturbed campaign — the condition the summary
        uses to keep its two-line reading two lines.
        """
        events = {
            "restarts": self.restarts,
            "pool_rebuilds": self.pool_rebuilds,
            "watchdog_kills": self.watchdog_kills,
            "checkpoint_restores": self.checkpoint_restores,
            "checkpoints_quarantined": self.checkpoints_quarantined,
            "quarantined_batches": len(self.quarantined_batches),
            "skipped_traces": self.skipped_traces,
            "scavenged_segments": self.scavenged_segments,
        }
        return {k: v for k, v in events.items() if v}

    def summary(self) -> str:
        """Two-line human reading (three with recovery events) for reports."""
        bs = self.batch_seconds()
        over = " OVERSUBSCRIBED" if self.oversubscribed else ""
        lines = [
            f"campaign: {self.n_traces} traces in {self.wall_seconds:.2f}s "
            f"({self.traces_per_second:,.0f} traces/s)  "
            f"workers={self.n_workers}/{self.cpu_count}cpu"
            f"[{self.start_method}]{over}",
            f"  batches: {self.n_batches} x ~{self.batch_size}  "
            f"t/batch {bs['min']:.3f}/{bs['median']:.3f}/{bs['max']:.3f}s  "
            f"transport={self.transport} ({self.pipe_bytes:,} B)  "
            f"schedules: {self.schedule_replays} replayed, "
            f"{self.schedule_compiles} compiled",
        ]
        events = self.robustness_events()
        if events:
            lines.append(
                "  recovery: "
                + "  ".join(f"{k}={v}" for k, v in events.items())
            )
        return "\n".join(lines)
