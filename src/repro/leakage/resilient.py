"""Resilient, resumable TVLA campaigns.

A multi-million-trace campaign is hours of simulation; a killed worker,
a hung fork or a ctrl-C must cost one batch, not the campaign.  This
module wraps the acquisition machinery of
:mod:`repro.leakage.acquisition` with

* **checkpointing** — the merged :class:`TTestAccumulator` state is
  written to disk (atomically) every ``checkpoint_every`` batches and
  on interruption, so a restarted run resumes from the last completed
  batch.  Because batch ``i`` draws from ``default_rng([seed, i])`` and
  the accumulator snapshot is exact raw sums, the resumed campaign
  performs the *same float64 additions in the same order* as an
  uninterrupted run: the final :class:`TvlaResult` is bitwise
  identical, not statistically equivalent.
* **per-batch worker timeouts + bounded retry** — in parallel mode each
  batch result is awaited with a timeout; a hung or killed worker
  triggers pool teardown, exponential backoff and resubmission of the
  campaign tail (results are only merged in batch order, so nothing
  speculative ever enters the accumulator).
* **graceful degradation** — when the pool keeps dying
  (``max_retries`` exhausted), the campaign falls back to in-process
  serial execution and finishes, slower but correct.

The checkpoint also stores a campaign fingerprint (trace counts, seed,
noise, label, trace length); resuming against a different campaign is
refused loudly instead of silently merging incompatible sums.
"""

from __future__ import annotations

import os
import time
import warnings
import zipfile
from typing import Dict, Optional

import numpy as np

from ..obs.log import get_logger
from ..obs.trace import trace, tracing_enabled
from .acquisition import (
    CampaignBatchError,
    CampaignConfig,
    TraceSource,
    _absorb_record,
    _attach_phases,
    _batch_plan,
    _campaign_pool,
    _pool_context,
    _timed_batch,
    _trace_mark,
    _WorkerFailure,
    _worker_batch,
    resolve_n_workers,
)
from .stats import CampaignStats
from .transport import (
    adopt_shard,
    resolve_transport,
    scavenge_orphans,
    unpack_shard,
)
from .tvla import TTestAccumulator, TvlaResult

__all__ = [
    "CHECKPOINT_VERSION",
    "save_checkpoint",
    "load_checkpoint",
    "quarantine_checkpoint",
    "run_campaign_resilient",
]

CHECKPOINT_VERSION = 1

_LOG = get_logger("leakage.resilient")

#: Fingerprint fields that must match between a checkpoint and the
#: campaign resuming from it.
_FINGERPRINT_FIELDS = ("n_traces", "batch_size", "noise_sigma", "seed", "label")


def validate_runner_args(
    checkpoint_every: int = 1,
    max_retries: int = 0,
    worker_timeout_s: Optional[float] = None,
    backoff_s: float = 0.0,
    warmup_batch_s: Optional[float] = None,
) -> None:
    """Reject runner parameter combinations that can never make progress.

    A silent retry loop is worse than an immediate error: a
    ``worker_timeout_s`` shorter than one batch's compute time kills
    every attempt, burns ``max_retries`` pool rebuilds and then grinds
    through the whole campaign serially — hours of wasted work that a
    parameter check at minute zero would have prevented.

    Args:
        warmup_batch_s: Measured warm-up/first-batch wall time, when
            the caller has one; used to catch timeouts no batch can
            beat.

    Raises:
        ValueError: With an actionable message naming the parameter.
    """
    if checkpoint_every < 1:
        raise ValueError(
            f"checkpoint_every must be >= 1, got {checkpoint_every} (a "
            "campaign that never checkpoints cannot resume)"
        )
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")
    if backoff_s < 0:
        raise ValueError(f"backoff_s must be >= 0, got {backoff_s}")
    if worker_timeout_s is not None and worker_timeout_s <= 0:
        raise ValueError(
            f"worker_timeout_s must be > 0 (or None to wait forever), got "
            f"{worker_timeout_s}: every batch would be declared hung "
            "before it could start"
        )
    if (
        worker_timeout_s is not None
        and warmup_batch_s is not None
        and warmup_batch_s > 0
        and worker_timeout_s < warmup_batch_s
    ):
        raise ValueError(
            f"worker_timeout_s={worker_timeout_s:g} is shorter than the "
            f"measured warm-up batch time of {warmup_batch_s:.3g}s: every "
            "batch would be killed before finishing and the campaign can "
            "never make progress.  Raise worker_timeout_s above the batch "
            "time (with headroom), or shrink batch_size."
        )


def save_checkpoint(
    path: str,
    acc: TTestAccumulator,
    config: CampaignConfig,
    next_batch: int,
) -> None:
    """Atomically write the campaign state after ``next_batch`` batches.

    The write goes to a temporary file in the same directory followed
    by :func:`os.replace`, so a crash mid-write leaves the previous
    checkpoint intact (``np.savez`` is handed an open file object —
    it must not append ``.npz`` to the final name).
    """
    arrays: Dict[str, np.ndarray] = dict(acc.state())
    arrays["version"] = np.asarray(CHECKPOINT_VERSION, dtype=np.int64)
    arrays["next_batch"] = np.asarray(int(next_batch), dtype=np.int64)
    arrays["n_traces"] = np.asarray(config.n_traces, dtype=np.int64)
    arrays["batch_size"] = np.asarray(config.batch_size, dtype=np.int64)
    arrays["noise_sigma"] = np.asarray(config.noise_sigma, dtype=np.float64)
    arrays["seed"] = np.asarray(config.seed, dtype=np.int64)
    arrays["label"] = np.asarray(config.label)
    with trace("campaign.checkpoint", next_batch=int(next_batch)):
        tmp = f"{path}.tmp"
        with open(tmp, "wb") as f:
            np.savez(f, **arrays)
        os.replace(tmp, path)


def quarantine_checkpoint(path: str, reason: str) -> str:
    """Move an unreadable checkpoint aside and warn; returns the new path.

    The corrupt file is preserved as ``<path>.corrupt`` for post-mortems
    (overwriting any previous quarantine of the same path) so the
    campaign can restart cleanly without destroying the evidence.
    """
    target = f"{path}.corrupt"
    try:
        os.replace(path, target)
    except OSError:  # pragma: no cover - concurrent removal
        pass
    msg = (
        f"checkpoint {path!r} is unreadable ({reason}); quarantined to "
        f"{target!r} and ignored"
    )
    _LOG.warning("%s", msg)
    warnings.warn(msg, RuntimeWarning, stacklevel=3)
    return target


def load_checkpoint(
    path: str, config: CampaignConfig, n_samples: int
) -> Optional[tuple]:
    """Load and validate a checkpoint.

    A file that cannot be parsed at all (zero-length, truncated zip,
    foreign bytes) is *quarantined* — renamed to ``<path>.corrupt``
    with a warning — and treated as absent, so ``resume=True`` degrades
    to a fresh start instead of crashing on an artifact of the previous
    crash.

    Returns:
        ``(accumulator, next_batch)`` or ``None`` if no checkpoint
        exists at ``path`` (or the one that did was quarantined).

    Raises:
        ValueError: The checkpoint belongs to a different campaign
            (fingerprint mismatch) or an unknown format version —
            a *well-formed* file that must not be silently discarded.
    """
    if not os.path.exists(path):
        return None
    try:
        with np.load(path, allow_pickle=False) as z:
            data = {k: z[k] for k in z.files}
    except (OSError, EOFError, zipfile.BadZipFile, ValueError, KeyError) as exc:
        quarantine_checkpoint(path, f"{type(exc).__name__}: {exc}")
        return None
    version = int(data.get("version", -1))
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"checkpoint {path!r} has version {version}, expected "
            f"{CHECKPOINT_VERSION}"
        )
    missing = [
        k
        for k in (*_FINGERPRINT_FIELDS, "n_samples", "next_batch")
        if k not in data
    ]
    if missing:
        quarantine_checkpoint(path, f"missing entries {missing}")
        return None
    for name in _FINGERPRINT_FIELDS:
        have = data[name].item()
        want = getattr(config, name)
        if have != want:
            raise ValueError(
                f"checkpoint {path!r} belongs to a different campaign: "
                f"{name} is {have!r} in the checkpoint but {want!r} in "
                "the config (refusing to merge incompatible sums)"
            )
    if int(data["n_samples"]) != int(n_samples):
        raise ValueError(
            f"checkpoint {path!r} has {int(data['n_samples'])} samples "
            f"per trace but the source produces {n_samples}"
        )
    return TTestAccumulator.from_state(data), int(data["next_batch"])


def run_campaign_resilient(
    source: TraceSource,
    config: CampaignConfig,
    checkpoint_path: str,
    n_workers: Optional[int] = None,
    checkpoint_every: int = 1,
    max_retries: int = 2,
    worker_timeout_s: Optional[float] = None,
    backoff_s: float = 0.5,
    resume: bool = True,
    cleanup: bool = True,
) -> TvlaResult:
    """Run a fixed-vs-random campaign with checkpointing and retries.

    Produces the bitwise-identical :class:`TvlaResult` of
    :func:`~repro.leakage.acquisition.run_campaign` for every
    combination of worker count, interruption and resume.

    Args:
        source: Device under test.
        config: Campaign parameters (part of the checkpoint
            fingerprint).
        checkpoint_path: Where the ``.npz`` accumulator state lives.
        n_workers: Process count (``None`` = ``config.n_workers``;
            1 = in-process serial, no pool to die).
        checkpoint_every: Write the checkpoint every N merged batches
            (and always on interruption; 1 = after every batch).
        max_retries: Pool rebuilds tolerated before degrading to serial
            execution for the rest of the campaign.
        worker_timeout_s: Per-batch result timeout in parallel mode; a
            batch exceeding it is treated as a hung/killed worker.
            ``None`` waits forever (exceptions are still handled).
        backoff_s: Base of the exponential backoff between pool
            rebuilds (``backoff_s * 2**attempt``).
        resume: Load an existing checkpoint (default).  ``False``
            starts from scratch, overwriting it.
        cleanup: Delete the checkpoint after a completed run (default);
            keep it for post-mortems with ``False``.

    Raises:
        CampaignBatchError: A batch failed *deterministically* (the
            source raised).  Worker kills and timeouts are retried;
            source exceptions are not — they would fail again.
        ValueError: Checkpoint fingerprint mismatch (see
            :func:`load_checkpoint`).
    """
    validate_runner_args(
        checkpoint_every=checkpoint_every,
        max_retries=max_retries,
        worker_timeout_s=worker_timeout_s,
        backoff_s=backoff_s,
    )
    plan = _batch_plan(config)
    requested = config.n_workers if n_workers is None else n_workers
    n_workers = resolve_n_workers(requested, len(plan))
    transport = resolve_transport(config.transport, source.n_samples)

    span_mark = _trace_mark()
    acc = TTestAccumulator(source.n_samples)
    start = 0
    if resume:
        with trace("campaign.checkpoint_load", path=checkpoint_path):
            loaded = load_checkpoint(checkpoint_path, config, source.n_samples)
        if loaded is not None:
            acc, start = loaded

    stats = CampaignStats(
        label=config.label,
        n_traces=config.n_traces,
        batch_size=config.batch_size,
        requested_workers=requested,
        cpu_count=os.cpu_count() or 1,
    )
    stats.oversubscribed = n_workers > stats.cpu_count
    t_start = time.perf_counter()

    i = start
    attempts = 0
    pool = None
    pending: Dict[int, object] = {}
    submitted = i
    dirty = False  # merged batches not yet checkpointed

    def drain_pending() -> None:
        # Release shared-memory segments of speculative batches that
        # completed but will be resubmitted (their payloads are
        # discarded, and a stranded segment would outlive the run).
        for result in pending.values():
            try:
                if result.ready():
                    out = result.get(0)
                    if not isinstance(out, _WorkerFailure):
                        unpack_shard(adopt_shard(out[0]))
            except Exception:
                pass

    def teardown_pool() -> None:
        nonlocal pool, pending, submitted
        if pool is not None:
            drain_pending()
            pool.terminate()
            pool.join()
            # With the pool dead, sweep the campaign's segment prefix:
            # shards in flight when a worker died (or whose payloads we
            # just discarded) must not outlive the rebuild.
            with trace("campaign.scavenge"):
                stats.scavenged_segments += len(scavenge_orphans())
        pool = None
        pending = {}
        submitted = i

    # Opened here, closed in the ``finally``: teardown and the
    # interruption checkpoint stay inside the run span.
    run_span = trace(
        "campaign.run", label=config.label, n_traces=config.n_traces
    )
    run_span.__enter__()
    try:
        while i < len(plan):
            if n_workers <= 1:
                # Serial path — also the degraded mode after retries.
                stats.start_method = "serial"
                stats.transport = "none"
                index, n = plan[i]
                try:
                    shard, record = _timed_batch(source, config, index, n)
                except Exception as exc:
                    raise CampaignBatchError(
                        index, config.label, f"{type(exc).__name__}: {exc}"
                    ) from exc
            else:
                if pool is None:
                    pool = _campaign_pool(
                        n_workers, source, config, transport, stats
                    )
                    stats.n_workers = n_workers
                    stats.transport = transport
                    stats.start_method = _pool_context(config).get_start_method()
                    pending = {}
                    submitted = i
                # Keep a bounded submission window ahead of the merge
                # cursor: enough to saturate the pool, small enough
                # that a pool death loses little speculative work.
                while submitted < len(plan) and submitted - i < 2 * n_workers:
                    pending[submitted] = pool.apply_async(
                        _worker_batch, (plan[submitted],)
                    )
                    submitted += 1
                try:
                    out = pending.pop(i).get(timeout=worker_timeout_s)
                except Exception:
                    # Hung or killed worker / broken pool: tear down,
                    # back off, rebuild and resubmit from batch i.  The
                    # accumulator only ever holds batches < i, so the
                    # retry is invisible in the final statistics.
                    teardown_pool()
                    stats.pool_rebuilds += 1
                    if attempts >= max_retries:
                        n_workers = 1  # permanent serial degradation
                        continue
                    time.sleep(backoff_s * (2**attempts))
                    attempts += 1
                    continue
                if isinstance(out, _WorkerFailure):
                    raise CampaignBatchError(
                        out.index, config.label, out.message, out.traceback
                    )
                payload, record = out
                shard = unpack_shard(adopt_shard(payload))
                attempts = 0
            with trace("campaign.merge"):
                acc.merge(shard)
            _absorb_record(record)
            stats.batches.append(record)
            i += 1
            dirty = True
            if (i - start) % checkpoint_every == 0:
                save_checkpoint(checkpoint_path, acc, config, next_batch=i)
                dirty = False
    finally:
        teardown_pool()
        if dirty and i < len(plan):
            # Interrupted (exception / ctrl-C): persist the completed
            # prefix so the restart costs at most one batch.
            save_checkpoint(checkpoint_path, acc, config, next_batch=i)
        run_span.__exit__(None, None, None)

    stats.wall_seconds = time.perf_counter() - t_start
    if tracing_enabled():
        _attach_phases(stats, span_mark)
    if cleanup:
        if os.path.exists(checkpoint_path):
            os.remove(checkpoint_path)
    else:
        save_checkpoint(checkpoint_path, acc, config, next_batch=i)
    return acc.result(label=config.label, stats=stats)
