"""Crash-safe campaign supervisor.

:func:`run_campaign_resilient` retries transient worker failures, but a
production-scale TVLA campaign (the paper's Figs. 14-17 at 2M traces
span hours across many workers) dies in harder ways: a ``kill -9``
mid-checkpoint, a worker that hangs instead of crashing, a corrupted
checkpoint file greeting the restart, a shared-memory segment stranded
by an abnormal exit.  This module wraps the same acquisition machinery
in a supervisor hardened against process-level failure:

* **Checksummed, schema-versioned checkpoints** — every checkpoint
  carries a CRC over its payload arrays; a truncated or bit-flipped
  file is detected at load, quarantined to ``<path>.corrupt`` and the
  campaign restarts from the last good generation instead of crashing.
* **Double-buffered checkpoint generations** — the previous checkpoint
  is rotated to ``<path>.prev`` before the new one lands, so a
  ``kill -9`` at *any* instruction of :func:`save_checkpoint_supervised`
  leaves at least one loadable generation on disk.
* **Signal-driven graceful shutdown** — SIGINT/SIGTERM flush a final
  checkpoint, write a ``<path>.interrupted`` resume marker and raise
  :class:`CampaignInterrupted`; the next run resumes bitwise.
* **Worker heartbeat / watchdog** — workers stamp a shared heartbeat
  before and after each batch; a worker whose heartbeat goes stale
  mid-batch (or a head batch exceeding ``worker_timeout_s``) is killed
  with its pool and the batch is reassigned.  Kills are counted in
  :attr:`CampaignStats.watchdog_kills`.
* **Poison-batch quarantine** — a batch that keeps failing across
  pool generations (``max_retries`` exceeded, failures observed from
  at least two distinct worker generations) is recorded in
  :attr:`CampaignStats.quarantined_batches`, its traces subtracted
  explicitly (:attr:`CampaignStats.skipped_traces`), and the campaign
  continues instead of aborting.  Quarantined indices persist in the
  checkpoint, so a resumed run does not silently retry a known-poison
  batch.
* **Orphan scavenging** — every pool teardown and the final exit sweep
  call :func:`repro.leakage.transport.scavenge_orphans`, so abnormal
  exits never leak ``shared_memory`` segments.

When nothing goes wrong — and when every injected failure is of a
recoverable kind — the supervised campaign produces the bitwise
identical :class:`TvlaResult` of a plain serial
:func:`~repro.leakage.acquisition.run_campaign`.  Quarantining a batch
is the one documented exception: it *explicitly* changes the trace
count, and says so in the stats.

The failure modes this supervisor claims to survive are exercised by
the deterministic chaos harness in :mod:`repro.chaos`.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import threading
import time
import zipfile
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..obs import metrics as obs_metrics
from ..obs.trace import trace, trace_context, tracing_enabled
from .acquisition import (
    CampaignBatchError,
    CampaignConfig,
    TraceSource,
    _absorb_record,
    _attach_phases,
    _batch_plan,
    _init_worker,
    _pool_context,
    _timed_batch,
    _trace_mark,
    _warm_source,
    _WorkerFailure,
    _worker_batch,
    resolve_n_workers,
)
from .resilient import (
    _FINGERPRINT_FIELDS,
    quarantine_checkpoint,
    validate_runner_args,
)
from .stats import CampaignStats
from .transport import (
    TransportError,
    adopt_shard,
    new_campaign_prefix,
    resolve_transport,
    scavenge_orphans,
    segment_prefix,
    set_segment_prefix,
    unpack_shard,
)
from .tvla import TTestAccumulator, TvlaResult

__all__ = [
    "SUPERVISOR_CHECKPOINT_VERSION",
    "CampaignInterrupted",
    "SupervisorCheckpoint",
    "save_checkpoint_supervised",
    "load_checkpoint_supervised",
    "run_campaign_supervised",
]

SUPERVISOR_CHECKPOINT_VERSION = 2

#: Checkpoint entries excluded from the CRC (the CRC cannot cover
#: itself).
_CRC_KEY = "crc32"

#: Poll interval of the parent's watchdog wait loop.
_POLL_S = 0.05


class CampaignInterrupted(RuntimeError):
    """The campaign stopped early but resumably.

    Raised after the final checkpoint was flushed and the
    ``<checkpoint>.interrupted`` marker written; re-running the same
    supervised campaign with ``resume=True`` continues bitwise from
    ``next_batch``.
    """

    def __init__(self, checkpoint_path: str, next_batch: int, reason: str):
        super().__init__(
            f"campaign interrupted ({reason}) after {next_batch} batches; "
            f"state flushed to {checkpoint_path!r} — rerun with resume=True "
            "to continue bitwise"
        )
        self.checkpoint_path = checkpoint_path
        self.next_batch = next_batch
        self.reason = reason


# ----------------------------------------------------------------------
# checkpoint format v2: CRC + double-buffered generations
# ----------------------------------------------------------------------
@dataclass
class SupervisorCheckpoint:
    """A validated v2 checkpoint, plus what loading it cost."""

    acc: TTestAccumulator
    next_batch: int
    restarts: int
    watchdog_kills: int
    quarantined: List[int]
    used_fallback: bool  #: True when ``<path>.prev`` had to be used
    files_quarantined: int  #: corrupt generations set aside during load


def _payload_crc(arrays: Dict[str, np.ndarray]) -> int:
    """CRC32 over every payload array's bytes, in sorted key order."""
    crc = 0
    for key in sorted(arrays):
        if key == _CRC_KEY:
            continue
        crc = zlib.crc32(key.encode(), crc)
        crc = zlib.crc32(np.ascontiguousarray(arrays[key]).tobytes(), crc)
    return crc & 0xFFFFFFFF


def _previous_path(path: str) -> str:
    return f"{path}.prev"


def marker_path(path: str) -> str:
    """The resumable-interruption marker next to checkpoint ``path``."""
    return f"{path}.interrupted"


def save_checkpoint_supervised(
    path: str,
    acc: TTestAccumulator,
    config: CampaignConfig,
    next_batch: int,
    restarts: int = 0,
    watchdog_kills: int = 0,
    quarantined: "Optional[List[int]]" = None,
) -> None:
    """Write a checksummed v2 checkpoint, keeping the previous generation.

    Write order is crash-safe at every instruction boundary:

    1. the new state goes to ``<path>.tmp`` (flushed and fsynced);
    2. the current ``<path>`` — if any — rotates to ``<path>.prev``;
    3. ``<path>.tmp`` replaces ``<path>``.

    A ``kill -9`` during (1) leaves both generations untouched; during
    (2)/(3) the previous generation survives as ``<path>`` or
    ``<path>.prev``, and the loader falls back.  Nothing is ever
    modified in place.
    """
    arrays: Dict[str, np.ndarray] = dict(acc.state())
    arrays["version"] = np.asarray(
        SUPERVISOR_CHECKPOINT_VERSION, dtype=np.int64
    )
    arrays["next_batch"] = np.asarray(int(next_batch), dtype=np.int64)
    arrays["n_traces"] = np.asarray(config.n_traces, dtype=np.int64)
    arrays["batch_size"] = np.asarray(config.batch_size, dtype=np.int64)
    arrays["noise_sigma"] = np.asarray(config.noise_sigma, dtype=np.float64)
    arrays["seed"] = np.asarray(config.seed, dtype=np.int64)
    arrays["label"] = np.asarray(config.label)
    arrays["restarts"] = np.asarray(int(restarts), dtype=np.int64)
    arrays["watchdog_kills"] = np.asarray(int(watchdog_kills), dtype=np.int64)
    arrays["quarantined"] = np.asarray(
        sorted(quarantined or ()), dtype=np.int64
    )
    arrays[_CRC_KEY] = np.asarray(_payload_crc(arrays), dtype=np.uint32)
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as f:
        np.savez(f, **arrays)
        f.flush()
        os.fsync(f.fileno())
    if os.path.exists(path):
        os.replace(path, _previous_path(path))
    os.replace(tmp, path)


def _read_v2(
    path: str, config: CampaignConfig, n_samples: int
) -> "Optional[SupervisorCheckpoint]":
    """One generation: parse, CRC-check and fingerprint-check ``path``.

    Returns ``None`` (after quarantining the file) for anything
    unparseable or checksum-corrupt; raises ``ValueError`` only for
    well-formed checkpoints of a *different* campaign.
    """
    try:
        with np.load(path, allow_pickle=False) as z:
            data = {k: z[k] for k in z.files}
    except (OSError, EOFError, zipfile.BadZipFile, ValueError, KeyError) as exc:
        quarantine_checkpoint(path, f"{type(exc).__name__}: {exc}")
        return None
    required = {
        _CRC_KEY, "version", "next_batch", "n_samples",
        "restarts", "watchdog_kills", "quarantined", *_FINGERPRINT_FIELDS,
    }
    missing = sorted(required - set(data))
    if missing:
        quarantine_checkpoint(path, f"missing entries {missing}")
        return None
    if int(data["version"]) != SUPERVISOR_CHECKPOINT_VERSION:
        quarantine_checkpoint(
            path,
            f"unsupported checkpoint version {int(data['version'])} "
            f"(supervisor writes v{SUPERVISOR_CHECKPOINT_VERSION})",
        )
        return None
    if _payload_crc(data) != int(data[_CRC_KEY]):
        quarantine_checkpoint(
            path,
            f"CRC mismatch (stored {int(data[_CRC_KEY]):#010x}, computed "
            f"{_payload_crc(data):#010x}) — payload corrupt",
        )
        return None
    for name in _FINGERPRINT_FIELDS:
        have = data[name].item()
        want = getattr(config, name)
        if have != want:
            raise ValueError(
                f"checkpoint {path!r} belongs to a different campaign: "
                f"{name} is {have!r} in the checkpoint but {want!r} in "
                "the config (refusing to merge incompatible sums)"
            )
    if int(data["n_samples"]) != int(n_samples):
        raise ValueError(
            f"checkpoint {path!r} has {int(data['n_samples'])} samples "
            f"per trace but the source produces {n_samples}"
        )
    return SupervisorCheckpoint(
        acc=TTestAccumulator.from_state(data),
        next_batch=int(data["next_batch"]),
        restarts=int(data["restarts"]),
        watchdog_kills=int(data["watchdog_kills"]),
        quarantined=[int(q) for q in data["quarantined"]],
        used_fallback=False,
        files_quarantined=0,
    )


def load_checkpoint_supervised(
    path: str, config: CampaignConfig, n_samples: int
) -> "Optional[SupervisorCheckpoint]":
    """Load the newest good checkpoint generation.

    Tries ``path`` first, then ``<path>.prev``.  Corrupt generations
    are quarantined (``.corrupt``) with a warning and skipped; the
    fallback costs at most ``checkpoint_every`` re-simulated batches
    and keeps the resumed result bitwise identical.

    Returns ``None`` when no generation is loadable — the campaign
    starts fresh.
    """
    files_quarantined = 0
    for candidate, is_fallback in (
        (path, False),
        (_previous_path(path), True),
    ):
        if not os.path.exists(candidate):
            continue
        before = os.path.exists(candidate)
        loaded = _read_v2(candidate, config, n_samples)
        if loaded is None:
            if before and not os.path.exists(candidate):
                files_quarantined += 1
            continue
        loaded.used_fallback = is_fallback
        loaded.files_quarantined = files_quarantined
        return loaded
    return None


# ----------------------------------------------------------------------
# worker-side heartbeat plumbing
# ----------------------------------------------------------------------
# Heartbeat layout: 3 doubles per worker slot —
#   [0] last beat (time.monotonic, comparable across processes on the
#       platforms the pool runs on), [1] batch index, [2] busy flag.
_HB = None
_HB_SLOTS = 0
_MY_SLOT = -1


def _init_supervised_worker(
    source: TraceSource,
    config: CampaignConfig,
    transport: str,
    shm_prefix: Optional[str],
    hb,
    slot_counter,
    n_slots: int,
    worker_setup,
    obs_ctx: Optional[dict] = None,
) -> None:
    """Pool initializer: campaign state + heartbeat slot + chaos hooks."""
    global _HB, _HB_SLOTS, _MY_SLOT
    _init_worker(source, config, transport, shm_prefix, obs_ctx)
    _HB = hb
    _HB_SLOTS = n_slots
    with slot_counter.get_lock():
        _MY_SLOT = slot_counter.value % n_slots
        slot_counter.value += 1
    if worker_setup is not None:
        worker_setup()


def _supervised_worker_batch(item: Tuple[int, int]):
    """One batch with heartbeat stamps around the acquisition."""
    index, _ = item
    if _HB is not None and _MY_SLOT >= 0:
        base = 3 * _MY_SLOT
        _HB[base] = time.monotonic()
        _HB[base + 1] = float(index)
        _HB[base + 2] = 1.0
    out = _worker_batch(item)
    if _HB is not None and _MY_SLOT >= 0:
        base = 3 * _MY_SLOT
        _HB[base] = time.monotonic()
        _HB[base + 2] = 0.0
    return out


class _HungPool(Exception):
    """Internal: the watchdog (or head-batch deadline) fired."""

    def __init__(self, why: str):
        super().__init__(why)
        self.why = why


def _await_result(
    result,
    deadline: Optional[float],
    hb,
    n_slots: int,
    watchdog_timeout_s: Optional[float],
):
    """Wait for the head batch, watching heartbeats while we do.

    Raises :class:`_HungPool` when the head batch blows its deadline or
    any busy worker's heartbeat goes stale — both are treated as a hang
    and answered with a pool kill + batch reassignment.
    """
    while True:
        try:
            return result.get(timeout=_POLL_S)
        except multiprocessing.TimeoutError as exc:
            now = time.monotonic()
            if deadline is not None and now > deadline:
                raise _HungPool("head batch exceeded worker_timeout_s") from exc
            if hb is not None and watchdog_timeout_s is not None:
                for slot in range(n_slots):
                    base = 3 * slot
                    busy = hb[base + 2] > 0.5
                    beat = hb[base]
                    if busy and beat > 0 and now - beat > watchdog_timeout_s:
                        raise _HungPool(
                            f"worker slot {slot} heartbeat stale for "
                            f">{watchdog_timeout_s:g}s on batch "
                            f"{int(hb[base + 1])}"
                        ) from exc


# ----------------------------------------------------------------------
# the supervisor
# ----------------------------------------------------------------------
@dataclass
class _BatchFailureLog:
    """Per-batch failure accounting behind poison-batch quarantine."""

    counts: Dict[int, int] = field(default_factory=dict)
    origins: Dict[int, Set[str]] = field(default_factory=dict)

    def record(self, index: int, origin: str) -> None:
        self.counts[index] = self.counts.get(index, 0) + 1
        self.origins.setdefault(index, set()).add(origin)

    def is_poison(self, index: int, max_retries: int) -> bool:
        """Failed more than ``max_retries`` times across >= 2 origins.

        The two-origin requirement distinguishes a poisoned *batch*
        from a broken *worker generation*: one bad pool can fail any
        batch, but only a batch that takes down independent workers is
        condemned.
        """
        return (
            self.counts.get(index, 0) > max_retries
            and len(self.origins.get(index, ())) >= 2
        )


def run_campaign_supervised(
    source: TraceSource,
    config: CampaignConfig,
    checkpoint_path: str,
    n_workers: Optional[int] = None,
    checkpoint_every: int = 1,
    max_retries: int = 2,
    worker_timeout_s: Optional[float] = None,
    watchdog_timeout_s: Optional[float] = None,
    backoff_s: float = 0.5,
    resume: bool = True,
    cleanup: bool = True,
    quarantine_batches: bool = True,
    handle_signals: bool = True,
    stop_after_batches: Optional[int] = None,
    chaos=None,
) -> TvlaResult:
    """Run a fixed-vs-random campaign under the hardened supervisor.

    Args:
        source: Device under test.
        config: Campaign parameters (checkpoint fingerprint).
        checkpoint_path: Base path of the ``.npz`` checkpoint; the
            supervisor also manages ``<path>.prev`` (previous
            generation), ``<path>.corrupt`` (quarantine) and
            ``<path>.interrupted`` (resume marker).
        n_workers: Process count (``None`` = ``config.n_workers``).
        checkpoint_every: Checkpoint cadence in merged batches.
        max_retries: Failures tolerated per batch before quarantining
            it (parallel, failures from >= 2 pool generations) or
            degrading to serial execution.
        worker_timeout_s: Hard deadline for the head batch.  ``None``
            relies on the heartbeat watchdog alone.
        watchdog_timeout_s: Heartbeat staleness threshold; a busy
            worker silent for longer is declared hung and its pool
            killed.  ``None`` defaults to ``worker_timeout_s``.
        backoff_s: Exponential-backoff base between pool rebuilds.
        resume: Load the newest good checkpoint generation (default).
        cleanup: Delete checkpoint generations and the interruption
            marker after a completed run.
        quarantine_batches: Enable poison-batch quarantine.  ``False``
            reproduces the resilient runner's abort-on-deterministic-
            failure behaviour.
        handle_signals: Install SIGINT/SIGTERM handlers (main thread
            only) that flush a final checkpoint and raise
            :class:`CampaignInterrupted`.
        stop_after_batches: Merge at most this many batches in this
            process, then checkpoint and raise
            :class:`CampaignInterrupted` — time-sliced operation for
            schedulers, and the chaos harness's injection point for
            checkpoint-corruption scenarios.
        chaos: Optional chaos policy (duck-typed, see
            :mod:`repro.chaos`): ``worker_setup`` is invoked in every
            pool worker, ``post_checkpoint(path, next_batch)`` after
            every checkpoint write.

    Returns:
        The campaign's :class:`TvlaResult`, bitwise identical to an
        undisturbed serial run unless batches were quarantined — in
        which case ``result.stats.quarantined_batches`` and
        ``result.stats.skipped_traces`` say exactly what is missing.

    Raises:
        CampaignInterrupted: Signal received or ``stop_after_batches``
            reached; state is on disk and resumable.
        CampaignBatchError: A batch failed beyond recovery policy.
        ValueError: Invalid runner arguments, a timeout no batch can
            beat, or a checkpoint of a different campaign.
    """
    validate_runner_args(
        checkpoint_every=checkpoint_every,
        max_retries=max_retries,
        worker_timeout_s=worker_timeout_s,
        backoff_s=backoff_s,
    )
    if watchdog_timeout_s is None:
        watchdog_timeout_s = worker_timeout_s
    if stop_after_batches is not None and stop_after_batches < 1:
        raise ValueError(
            f"stop_after_batches must be >= 1, got {stop_after_batches}"
        )

    plan = _batch_plan(config)
    requested = config.n_workers if n_workers is None else n_workers
    n_workers = resolve_n_workers(requested, len(plan))
    transport = resolve_transport(config.transport, source.n_samples)
    if segment_prefix() is None:
        set_segment_prefix(new_campaign_prefix())

    stats = CampaignStats(
        label=config.label,
        n_traces=config.n_traces,
        batch_size=config.batch_size,
        requested_workers=requested,
        cpu_count=os.cpu_count() or 1,
    )
    stats.oversubscribed = n_workers > stats.cpu_count

    # Warm the source now (a no-op for sources without ``warmup()``):
    # the pool build would do it anyway, and the measured time lets the
    # progress validator reject a worker_timeout_s no batch can beat
    # *before* hours of retry loops, not after.
    warmup_s = _warm_source(source)
    stats.warmup_seconds += warmup_s
    validate_runner_args(
        checkpoint_every=checkpoint_every,
        max_retries=max_retries,
        worker_timeout_s=worker_timeout_s,
        backoff_s=backoff_s,
        warmup_batch_s=warmup_s if warmup_s > 0 else None,
    )

    span_mark = _trace_mark()
    acc = TTestAccumulator(source.n_samples)
    start = 0
    quarantined: List[int] = []
    if resume:
        with trace("campaign.checkpoint_load", path=checkpoint_path):
            loaded = load_checkpoint_supervised(
                checkpoint_path, config, source.n_samples
            )
        if loaded is not None:
            acc, start = loaded.acc, loaded.next_batch
            quarantined = list(loaded.quarantined)
            stats.restarts = loaded.restarts + 1
            obs_metrics.inc("supervisor.restarts", stats.restarts)
            stats.watchdog_kills = loaded.watchdog_kills
            stats.checkpoint_restores += int(loaded.used_fallback)
            stats.checkpoints_quarantined += loaded.files_quarantined
        else:
            if os.path.exists(checkpoint_path) or os.path.exists(
                _previous_path(checkpoint_path)
            ):  # pragma: no cover - both-corrupt double fault
                stats.checkpoints_quarantined += 1
    stats.quarantined_batches = quarantined
    stats.skipped_traces = sum(plan[q][1] for q in quarantined)

    post_checkpoint = getattr(chaos, "post_checkpoint", None)
    worker_setup = getattr(chaos, "worker_setup", None)

    def flush(next_batch: int) -> None:
        with trace("campaign.checkpoint", next_batch=next_batch):
            save_checkpoint_supervised(
                checkpoint_path,
                acc,
                config,
                next_batch=next_batch,
                restarts=stats.restarts,
                watchdog_kills=stats.watchdog_kills,
                quarantined=quarantined,
            )
        obs_metrics.inc("supervisor.checkpoints_written")
        if post_checkpoint is not None:
            post_checkpoint(checkpoint_path, next_batch)

    # --- signal handling: flush, mark, exit resumably ------------------
    stop_signal: List[int] = []
    installed: List[Tuple[int, object]] = []
    if handle_signals and threading.current_thread() is threading.main_thread():
        def _on_signal(signum, frame):  # pragma: no cover - timing-dependent
            stop_signal.append(signum)

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                installed.append((signum, signal.getsignal(signum)))
                signal.signal(signum, _on_signal)
            except (ValueError, OSError):  # pragma: no cover
                pass

    def interrupt(reason: str, next_batch: int) -> "CampaignInterrupted":
        # Flush only un-checkpointed progress: a redundant save would
        # rotate the generations once more for nothing (and, under
        # chaos, hide damage the last save already took).
        nonlocal dirty
        if dirty or not os.path.exists(checkpoint_path):
            flush(next_batch)
            dirty = False
        with open(marker_path(checkpoint_path), "w") as f:
            json.dump(
                {
                    "label": config.label,
                    "next_batch": next_batch,
                    "n_batches": len(plan),
                    "reason": reason,
                },
                f,
            )
        return CampaignInterrupted(checkpoint_path, next_batch, reason)

    t_start = time.perf_counter()
    failures = _BatchFailureLog()
    i = start
    attempts = 0  # consecutive failures without merging progress
    pool = None
    pool_gen = 0
    hb = None
    pending: Dict[int, object] = {}
    submitted = i
    merged_this_run = 0
    dirty = False

    def drain_pending() -> None:
        for result in pending.values():
            try:
                if result.ready():
                    out = result.get(0)
                    if not isinstance(out, _WorkerFailure):
                        unpack_shard(adopt_shard(out[0]))
            except Exception:
                pass

    def teardown_pool() -> None:
        nonlocal pool, pending, submitted, hb
        if pool is not None:
            with trace("campaign.pool_teardown"):
                drain_pending()
                pool.terminate()
                pool.join()
            with trace("campaign.scavenge"):
                stats.scavenged_segments += len(scavenge_orphans())
        pool = None
        hb = None
        pending = {}
        submitted = i

    def on_batch_failure(index: int, origin: str, why: str) -> "Optional[str]":
        """Shared retry/quarantine/degrade policy.  Returns an action."""
        nonlocal attempts
        failures.record(index, origin)
        attempts += 1
        if quarantine_batches and failures.is_poison(index, max_retries):
            quarantined.append(index)
            stats.quarantined_batches = quarantined
            stats.skipped_traces += plan[index][1]
            attempts = 0
            return "quarantine"
        if attempts > max_retries:
            return "give_up"
        time.sleep(backoff_s * (2 ** (attempts - 1)))
        return "retry"

    # The run span opens here and closes in the ``finally`` below, so
    # pool teardown and the exit scavenge stay inside it — manual
    # enter/exit keeps the recovery control flow un-indented.
    run_span = trace(
        "campaign.run", label=config.label, n_traces=config.n_traces
    )
    run_span.__enter__()
    try:
        while i < len(plan):
            if stop_signal:
                raise interrupt(
                    f"signal {signal.Signals(stop_signal[0]).name}", i
                )
            if i in quarantined:
                i += 1
                continue
            if (
                stop_after_batches is not None
                and merged_this_run >= stop_after_batches
            ):
                raise interrupt("stop_after_batches", i)

            index, n = plan[i]
            if n_workers <= 1:
                stats.start_method = "serial"
                stats.transport = "none"
                try:
                    shard, record = _timed_batch(source, config, index, n)
                except Exception as exc:
                    action = on_batch_failure(
                        index, "serial", f"{type(exc).__name__}: {exc}"
                    )
                    if action == "quarantine":
                        i += 1
                        continue
                    if action == "give_up":
                        raise CampaignBatchError(
                            index, config.label, f"{type(exc).__name__}: {exc}"
                        ) from exc
                    continue
            else:
                if pool is None:
                    # Capture the context *before* opening the setup
                    # span so worker spans root under the campaign
                    # span, not under pool setup.
                    obs_ctx = trace_context()
                    with trace("campaign.pool_setup", n_workers=n_workers):
                        ctx = _pool_context(config)
                        hb = ctx.Array("d", 3 * n_workers)
                        slot_counter = ctx.Value("i", 0)
                        if ctx.get_start_method() == "fork":
                            stats.warmup_seconds += _warm_source(source)
                        pool = ctx.Pool(
                            n_workers,
                            initializer=_init_supervised_worker,
                            initargs=(
                                source,
                                config,
                                transport,
                                segment_prefix(),
                                hb,
                                slot_counter,
                                n_workers,
                                worker_setup,
                                obs_ctx,
                            ),
                        )
                    pool_gen += 1
                    stats.n_workers = n_workers
                    stats.transport = transport
                    stats.start_method = ctx.get_start_method()
                    pending = {}
                    submitted = i
                while submitted < len(plan) and submitted - i < 2 * n_workers:
                    if submitted in quarantined:
                        submitted += 1
                        continue
                    pending[submitted] = pool.apply_async(
                        _supervised_worker_batch, (plan[submitted],)
                    )
                    submitted += 1
                deadline = (
                    time.monotonic() + worker_timeout_s
                    if worker_timeout_s is not None
                    else None
                )
                try:
                    out = pending.pop(i)
                except KeyError:  # pragma: no cover - defensive
                    continue
                try:
                    # The await is a real phase of the parent — blocked
                    # on workers — and spans it so the merged timeline
                    # accounts for the wait, not just the work.
                    with trace("campaign.await", index=index):
                        out = _await_result(
                            out, deadline, hb, n_workers, watchdog_timeout_s
                        )
                    if isinstance(out, _WorkerFailure):
                        raise CampaignBatchError(
                            out.index, config.label, out.message, out.traceback
                        )
                    payload, record = out
                    shard = unpack_shard(adopt_shard(payload))
                except _HungPool as hung:
                    stats.watchdog_kills += 1
                    obs_metrics.inc("supervisor.watchdog_kills")
                    stats.pool_rebuilds += 1
                    teardown_pool()
                    action = on_batch_failure(index, f"pool-{pool_gen}", hung.why)
                    if action == "quarantine":
                        i += 1
                    elif action == "give_up":
                        n_workers = 1  # permanent serial degradation
                        attempts = 0
                    continue
                except CampaignBatchError as exc:
                    # Deterministic in-worker failure: the resilient
                    # runner aborts here; the supervisor gives the
                    # batch max_retries more chances (fresh pool — the
                    # failure may be environmental) before quarantining
                    # or giving up.
                    stats.pool_rebuilds += 1
                    teardown_pool()
                    if not quarantine_batches:
                        raise
                    action = on_batch_failure(index, f"pool-{pool_gen}", str(exc))
                    if action == "quarantine":
                        i += 1
                    elif action == "give_up":
                        raise
                    continue
                except TransportError as exc:
                    # The shard vanished between worker and parent —
                    # re-simulate the batch; the moments are recomputable.
                    stats.pool_rebuilds += 1
                    teardown_pool()
                    action = on_batch_failure(index, f"pool-{pool_gen}", str(exc))
                    if action == "quarantine":
                        i += 1
                    elif action == "give_up":
                        raise CampaignBatchError(
                            index, config.label, f"transport: {exc}"
                        ) from exc
                    continue
                except Exception as exc:
                    # Broken pool, lost worker, pickling failure: all
                    # retryable by rebuild, exactly as in the resilient
                    # runner.
                    stats.pool_rebuilds += 1
                    teardown_pool()
                    action = on_batch_failure(
                        index, f"pool-{pool_gen}", f"{type(exc).__name__}: {exc}"
                    )
                    if action == "quarantine":
                        i += 1
                    elif action == "give_up":
                        n_workers = 1
                        attempts = 0
                    continue
            with trace("campaign.merge"):
                acc.merge(shard)
            _absorb_record(record)
            stats.batches.append(record)
            attempts = 0
            i += 1
            merged_this_run += 1
            dirty = True
            if (i - start) % checkpoint_every == 0:
                flush(i)
                dirty = False
    finally:
        for signum, old in installed:
            try:
                signal.signal(signum, old)
            except (ValueError, OSError):  # pragma: no cover
                pass
        teardown_pool()
        with trace("campaign.scavenge"):
            stats.scavenged_segments += len(scavenge_orphans())
        if dirty and i < len(plan):
            flush(i)
        run_span.__exit__(None, None, None)

    stats.wall_seconds = time.perf_counter() - t_start
    if tracing_enabled():
        _attach_phases(stats, span_mark)
    if cleanup:
        for leftover in (
            checkpoint_path,
            _previous_path(checkpoint_path),
            marker_path(checkpoint_path),
            f"{checkpoint_path}.tmp",
        ):
            if os.path.exists(leftover):
                os.remove(leftover)
    else:
        flush(i)
    return acc.result(label=config.label, stats=stats)
