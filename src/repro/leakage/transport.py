"""Batch-result transport between campaign workers and the parent.

The first parallel-campaign implementation shipped every shard back as
a pickled :class:`~repro.leakage.tvla.TTestAccumulator` — two
``(6, n_samples)`` float64 raw-moment matrices per batch, serialised
into the pool's result pipe byte by byte.  On trace-heavy campaigns
that pipe traffic (plus the pickling CPU on both ends) ate the speedup
the pool was supposed to buy (``BENCH_simulator.json`` v1 recorded a
0.92x "speedup" for ``n_workers=4``).

This module makes the shard transport explicit and cheap:

``pickle``
    The worker packs both classes' raw-moment sums into **one**
    contiguous ``(2, 6, n_samples)`` float64 array and returns it with
    three integers.  One buffer, one pickle, no object graph.

``shared_memory``
    The worker copies the packed moments into a POSIX shared-memory
    segment (:mod:`multiprocessing.shared_memory`) and returns only the
    segment *name*; the parent attaches, folds the moments straight out
    of the mapping, and unlinks.  The result pipe carries ~100 bytes
    per batch regardless of trace length — a zero-copy hand-off as far
    as the pickle layer is concerned.

``auto``
    ``shared_memory`` when the platform supports it and the payload is
    large enough for the segment round-trip to win
    (:data:`SHM_THRESHOLD_BYTES`), else ``pickle``.

Both paths are bitwise-lossless: the parent reconstructs the exact
float64 sums the worker computed, so the merge order — and therefore
the campaign's bitwise-equal-to-serial guarantee — is untouched.

Raw traces
----------
Most campaigns never need raw traces in the parent (the accumulator is
a sufficient statistic), but attack runners and trace dumps do.  For
them :class:`SharedTraceBuffer` provides the same opt-in
shared-memory hand-off for full ``(n_traces, n_samples)`` power
matrices: the producer writes into a named segment, the consumer
adopts it without the matrix ever touching a pipe.

Ownership protocol: the **creating** process calls :meth:`close` (and
deregisters itself); the **consuming** process calls :meth:`unlink`
after reading.  A consumer that never materialises leaks the segment
until interpreter shutdown — the campaign runners always consume or
unlink in a ``finally``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .tvla import TTestAccumulator

__all__ = [
    "TRANSPORTS",
    "SHM_THRESHOLD_BYTES",
    "ShardPayload",
    "shared_memory_available",
    "resolve_transport",
    "pack_shard",
    "unpack_shard",
    "SharedTraceBuffer",
]

#: Recognised transport names (``CampaignConfig.transport``).
TRANSPORTS = ("auto", "pickle", "shared_memory")

#: ``auto`` switches to shared memory above this packed-moment size;
#: below it, one pickled buffer is cheaper than two segment syscalls.
SHM_THRESHOLD_BYTES = 1 << 20

#: Pickle overhead of a small payload tuple (header, ints, short
#: strings) — used to estimate pipe traffic without re-serialising.
_PIPE_OVERHEAD = 160


def shared_memory_available() -> bool:
    """Whether :mod:`multiprocessing.shared_memory` works here."""
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - py<3.8 / exotic platforms
        return False
    return True


def resolve_transport(transport: str, n_samples: int) -> str:
    """Map a configured transport to the concrete one for this payload.

    Raises:
        ValueError: Unknown transport name, or ``shared_memory``
            requested on a platform without it.
    """
    if transport not in TRANSPORTS:
        raise ValueError(
            f"transport must be one of {TRANSPORTS}, got {transport!r}"
        )
    if transport == "shared_memory" and not shared_memory_available():
        raise ValueError(
            "transport='shared_memory' requested but "
            "multiprocessing.shared_memory is unavailable on this platform"
        )
    if transport == "auto":
        packed = 2 * 6 * int(n_samples) * 8
        if packed >= SHM_THRESHOLD_BYTES and shared_memory_available():
            return "shared_memory"
        return "pickle"
    return transport


@dataclass
class ShardPayload:
    """One batch's accumulator moments, in transit.

    Exactly one of ``moments`` (pickle transport) and ``shm_name``
    (shared-memory transport) is set.  ``pipe_bytes`` estimates what
    actually crossed the pool's result pipe for this shard.
    """

    n_samples: int
    fixed_n: int
    random_n: int
    moments: Optional[np.ndarray] = None  #: (2, 6, n_samples) float64
    shm_name: Optional[str] = None
    pipe_bytes: int = 0


def pack_shard(acc: TTestAccumulator, transport: str) -> ShardPayload:
    """Reduce an accumulator to its transportable moments (worker side).

    ``transport`` must already be concrete (:func:`resolve_transport`).
    """
    packed = np.stack([acc._fixed.sums, acc._random.sums])
    if transport == "pickle":
        return ShardPayload(
            n_samples=acc.n_samples,
            fixed_n=acc._fixed.n,
            random_n=acc._random.n,
            moments=packed,
            pipe_bytes=packed.nbytes + _PIPE_OVERHEAD,
        )
    from multiprocessing import resource_tracker, shared_memory

    shm = shared_memory.SharedMemory(create=True, size=packed.nbytes)
    np.ndarray(packed.shape, np.float64, buffer=shm.buf)[:] = packed
    name = shm.name
    shm.close()
    # Ownership moves to the consumer, which unlinks after folding the
    # moments in.  Deregister from *our* resource tracker so a spawn
    # worker's tracker does not warn about (and double-free) a segment
    # someone else already released.
    try:  # pragma: no cover - tracker is an implementation detail
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass
    return ShardPayload(
        n_samples=acc.n_samples,
        fixed_n=acc._fixed.n,
        random_n=acc._random.n,
        shm_name=name,
        pipe_bytes=len(name) + _PIPE_OVERHEAD,
    )


def unpack_shard(payload: ShardPayload) -> TTestAccumulator:
    """Rebuild the worker's accumulator bit for bit (parent side).

    Releases the shared-memory segment when the payload carries one.
    """
    acc = TTestAccumulator(payload.n_samples)
    acc._fixed.n = payload.fixed_n
    acc._random.n = payload.random_n
    if payload.shm_name is None:
        moments = payload.moments
        acc._fixed.sums[:] = moments[0]
        acc._random.sums[:] = moments[1]
        return acc
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=payload.shm_name)
    try:
        moments = np.ndarray(
            (2, 6, payload.n_samples), np.float64, buffer=shm.buf
        )
        acc._fixed.sums[:] = moments[0]
        acc._random.sums[:] = moments[1]
    finally:
        shm.close()
        shm.unlink()
    return acc


@dataclass
class SharedTraceBuffer:
    """A raw ``(n_traces, n_samples)`` power matrix in shared memory.

    Opt-in path for runners that need the traces themselves (CPA
    attacks, trace dumps) rather than the accumulator: the producer
    :meth:`publish`-es a matrix, ships this handle (a name and a
    shape) through the pipe, and the consumer :meth:`materialise`-s it.
    """

    shm_name: str
    shape: Tuple[int, int]
    dtype_str: str

    @classmethod
    def publish(cls, traces: np.ndarray) -> "SharedTraceBuffer":
        """Copy ``traces`` into a fresh segment (producer side)."""
        from multiprocessing import resource_tracker, shared_memory

        traces = np.ascontiguousarray(traces)
        shm = shared_memory.SharedMemory(create=True, size=traces.nbytes)
        np.ndarray(traces.shape, traces.dtype, buffer=shm.buf)[:] = traces
        name = shm.name
        shm.close()
        try:  # pragma: no cover - see pack_shard
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
        return cls(
            shm_name=name,
            shape=tuple(traces.shape),
            dtype_str=traces.dtype.str,
        )

    def materialise(self) -> np.ndarray:
        """Copy the matrix out and release the segment (consumer side)."""
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=self.shm_name)
        try:
            return np.ndarray(
                self.shape, np.dtype(self.dtype_str), buffer=shm.buf
            ).copy()
        finally:
            shm.close()
            shm.unlink()

    def discard(self) -> None:
        """Release the segment without reading it."""
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=self.shm_name)
        shm.close()
        shm.unlink()
