"""Batch-result transport between campaign workers and the parent.

The first parallel-campaign implementation shipped every shard back as
a pickled :class:`~repro.leakage.tvla.TTestAccumulator` — two
``(6, n_samples)`` float64 raw-moment matrices per batch, serialised
into the pool's result pipe byte by byte.  On trace-heavy campaigns
that pipe traffic (plus the pickling CPU on both ends) ate the speedup
the pool was supposed to buy (``BENCH_simulator.json`` v1 recorded a
0.92x "speedup" for ``n_workers=4``).

This module makes the shard transport explicit and cheap:

``pickle``
    The worker packs both classes' raw-moment sums into **one**
    contiguous ``(2, 6, n_samples)`` float64 array and returns it with
    three integers.  One buffer, one pickle, no object graph.

``shared_memory``
    The worker copies the packed moments into a POSIX shared-memory
    segment (:mod:`multiprocessing.shared_memory`) and returns only the
    segment *name*; the parent attaches, folds the moments straight out
    of the mapping, and unlinks.  The result pipe carries ~100 bytes
    per batch regardless of trace length — a zero-copy hand-off as far
    as the pickle layer is concerned.

``auto``
    ``shared_memory`` when the platform supports it and the payload is
    large enough for the segment round-trip to win
    (:data:`SHM_THRESHOLD_BYTES`), else ``pickle``.

Both paths are bitwise-lossless: the parent reconstructs the exact
float64 sums the worker computed, so the merge order — and therefore
the campaign's bitwise-equal-to-serial guarantee — is untouched.

Raw traces
----------
Most campaigns never need raw traces in the parent (the accumulator is
a sufficient statistic), but attack runners and trace dumps do.  For
them :class:`SharedTraceBuffer` provides the same opt-in
shared-memory hand-off for full ``(n_traces, n_samples)`` power
matrices: the producer writes into a named segment, the consumer
adopts it without the matrix ever touching a pipe.

Ownership protocol: the **creating** process calls :meth:`close` (and
deregisters itself); the **consuming** process calls :meth:`unlink`
after reading.  A consumer that never materialises would historically
leak the segment until interpreter shutdown; the scavenger below
closes that hole.

Orphan scavenging
-----------------
A segment whose creator was SIGKILLed mid-batch, or whose consumer
died between send and :func:`unpack_shard`, has no process left that
knows its name — under the old anonymous naming it leaked until
reboot.  Three mechanisms close the hole:

* every process keeps a **segment registry** (:data:`_LIVE_SEGMENTS`)
  of names it created or adopted and has not yet released; an
  ``atexit`` finalizer unlinks whatever is still registered when the
  process exits normally;
* campaign runners install a per-campaign **segment prefix**
  (:func:`set_segment_prefix` / :func:`new_campaign_prefix`), so every
  segment of one campaign run carries a recognisable name;
* :func:`scavenge_orphans` unlinks everything in the registry *plus* —
  on platforms exposing ``/dev/shm`` — any on-disk segment matching
  the campaign prefix, which covers segments created by workers that
  died before their names ever reached the parent.  The campaign
  teardown paths call it after the pool is terminated, when no live
  worker can still be mid-creation.
"""

from __future__ import annotations

import atexit
import os
import secrets
import warnings
from dataclasses import dataclass
from typing import Callable, List, Optional, Set, Tuple

import numpy as np

from ..obs import metrics as obs_metrics
from ..obs.log import get_logger
from ..obs.trace import trace
from .tvla import TTestAccumulator

_LOG = get_logger("leakage.transport")

#: Registry metric names (see :mod:`repro.obs.metrics`): bytes crossing
#: the pool result pipe, segments created, and orphans scavenged.
_M_PIPE_BYTES = "transport.pipe_bytes"
_M_SEGMENTS = "transport.segments_created"
_M_SCAVENGED = "transport.scavenged_segments"

__all__ = [
    "TRANSPORTS",
    "SHM_THRESHOLD_BYTES",
    "SEGMENT_PREFIX_ROOT",
    "ShardPayload",
    "TransportError",
    "shared_memory_available",
    "resolve_transport",
    "pack_shard",
    "unpack_shard",
    "mark_shard_sent",
    "adopt_shard",
    "SharedTraceBuffer",
    "new_campaign_prefix",
    "set_segment_prefix",
    "segment_prefix",
    "scavenge_orphans",
    "set_chaos_hook",
]

#: Recognised transport names (``CampaignConfig.transport``).
TRANSPORTS = ("auto", "pickle", "shared_memory")

#: ``auto`` switches to shared memory above this packed-moment size;
#: below it, one pickled buffer is cheaper than two segment syscalls.
SHM_THRESHOLD_BYTES = 1 << 20

#: Pickle overhead of a small payload tuple (header, ints, short
#: strings) — used to estimate pipe traffic without re-serialising.
_PIPE_OVERHEAD = 160

#: All named segments start with this, so a scavenger scan can
#: recognise ours without ever touching another application's segments.
SEGMENT_PREFIX_ROOT = "repro-shm"

#: Names this process created or adopted and has not yet released.
_LIVE_SEGMENTS: Set[str] = set()

#: Per-campaign segment-name prefix (``None`` = anonymous names, the
#: pre-scavenger behaviour).  Campaign runners set it in the parent and
#: in every worker so orphans are attributable to one run.
_SEGMENT_PREFIX: Optional[str] = None

_SEGMENT_COUNTER = 0

#: Chaos seam: when set, called with each freshly created segment name
#: (worker side, after the payload is written).  The chaos harness uses
#: it to drop segments and prove the campaign survives; it is never set
#: in production.
_CHAOS_HOOK: Optional[Callable[[str], None]] = None


class TransportError(RuntimeError):
    """A shard/trace segment could not be attached or read.

    Raised with the failed component named (segment name, stage), so a
    supervisor can attribute the failure to the transport layer and
    retry the batch instead of surfacing a bare ``FileNotFoundError``.
    """

    def __init__(self, component: str, name: str, message: str):
        super().__init__(
            f"transport failure in {component} (segment {name!r}): {message}"
        )
        self.component = component
        self.segment_name = name


def set_chaos_hook(hook: "Optional[Callable[[str], None]]") -> None:
    """Install (or clear, with ``None``) the segment-creation chaos hook."""
    global _CHAOS_HOOK
    _CHAOS_HOOK = hook


def new_campaign_prefix() -> str:
    """A fresh per-campaign segment prefix, unique to this run."""
    return f"{SEGMENT_PREFIX_ROOT}-{os.getpid()}-{secrets.token_hex(4)}"


def set_segment_prefix(prefix: Optional[str]) -> None:
    """Name all future segments under ``prefix`` (``None`` = anonymous).

    Campaign runners call this in the parent before building a pool and
    forward the prefix to workers, so every segment of the run is
    recognisable to :func:`scavenge_orphans`.
    """
    global _SEGMENT_PREFIX
    _SEGMENT_PREFIX = prefix


def segment_prefix() -> Optional[str]:
    """The segment-name prefix currently in force in this process."""
    return _SEGMENT_PREFIX


def _create_segment(nbytes: int):
    """A fresh shared-memory segment, named under the campaign prefix.

    Falls back to an anonymous segment when no prefix is installed or
    the platform rejects our names.  The name is registered in this
    process's segment registry; the caller owns releasing it (directly
    or by shipping it to a consumer that does).
    """
    global _SEGMENT_COUNTER
    from multiprocessing import shared_memory

    shm = None
    if _SEGMENT_PREFIX is not None:
        for _ in range(8):  # name collisions are one-in-2^32; be safe anyway
            _SEGMENT_COUNTER += 1
            name = f"{_SEGMENT_PREFIX}-{os.getpid()}-{_SEGMENT_COUNTER}"
            try:
                shm = shared_memory.SharedMemory(
                    name=name, create=True, size=nbytes
                )
                break
            except FileExistsError:  # pragma: no cover - stale leftover
                continue
            except (OSError, ValueError):  # pragma: no cover - name rules
                break
    if shm is None:
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
    _LIVE_SEGMENTS.add(shm.name)
    obs_metrics.inc(_M_SEGMENTS)
    return shm


def _adopt_segment(name: str) -> None:
    """Record that this process now owns releasing ``name``."""
    _LIVE_SEGMENTS.add(name)


def _release_segment(name: str) -> None:
    """Drop ``name`` from the registry (it was unlinked or handed off)."""
    _LIVE_SEGMENTS.discard(name)


def _unlink_quietly(name: str) -> bool:
    """Unlink segment ``name`` if it still exists; True when it did."""
    from multiprocessing import shared_memory

    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    except OSError:  # pragma: no cover - permission races
        return False
    try:
        shm.close()
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - lost a race
        return False
    return True


def scavenge_orphans(prefix: Optional[str] = None) -> List[str]:
    """Unlink every orphaned segment this process can attribute to itself.

    Two sweeps:

    1. the process-local registry — segments created or adopted here
       whose release never happened (consumer died between send and
       :func:`unpack_shard`, exception between publish and
       materialise);
    2. with ``prefix`` (or a campaign prefix installed via
       :func:`set_segment_prefix`), a scan of ``/dev/shm`` for on-disk
       segments carrying that prefix — segments created by a worker
       that died before its payload reached any registry.  Only names
       under the given campaign prefix are touched, never another
       run's.

    Call after pool teardown (no live worker mid-creation).  Returns
    the names actually unlinked; an empty list means no leaks.
    """
    scavenged: List[str] = []
    for name in sorted(_LIVE_SEGMENTS):
        if _unlink_quietly(name):
            scavenged.append(name)
    _LIVE_SEGMENTS.clear()
    scan = prefix if prefix is not None else _SEGMENT_PREFIX
    shm_dir = "/dev/shm"
    if scan and scan.startswith(SEGMENT_PREFIX_ROOT) and os.path.isdir(shm_dir):
        try:
            entries = os.listdir(shm_dir)
        except OSError:  # pragma: no cover - exotic mounts
            entries = []
        for entry in entries:
            if entry.startswith(scan) and _unlink_quietly(entry):
                scavenged.append(entry)
    if scavenged:
        obs_metrics.inc(_M_SCAVENGED, len(scavenged))
        _LOG.info(
            "scavenged %d orphaned shared-memory segment(s): %s",
            len(scavenged),
            ", ".join(scavenged),
        )
    return scavenged


@atexit.register
def _scavenge_at_exit() -> None:  # pragma: no cover - interpreter teardown
    """Process finalizer: release whatever this process still owns.

    Registry-only on purpose — at interpreter exit another process of
    the same campaign may still be running, so the prefix scan (which
    would unlink *its* in-flight segments) is left to the campaign
    teardown paths.
    """
    try:
        for name in list(_LIVE_SEGMENTS):
            _unlink_quietly(name)
        _LIVE_SEGMENTS.clear()
    except Exception:
        pass


def shared_memory_available() -> bool:
    """Whether :mod:`multiprocessing.shared_memory` works here."""
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - py<3.8 / exotic platforms
        return False
    return True


def resolve_transport(transport: str, n_samples: int) -> str:
    """Map a configured transport to the concrete one for this payload.

    Raises:
        ValueError: Unknown transport name, or ``shared_memory``
            requested on a platform without it.
    """
    if transport not in TRANSPORTS:
        raise ValueError(
            f"transport must be one of {TRANSPORTS}, got {transport!r}"
        )
    if transport == "shared_memory" and not shared_memory_available():
        raise ValueError(
            "transport='shared_memory' requested but "
            "multiprocessing.shared_memory is unavailable on this platform"
        )
    if transport == "auto":
        packed = 2 * 6 * int(n_samples) * 8
        if packed >= SHM_THRESHOLD_BYTES and shared_memory_available():
            return "shared_memory"
        return "pickle"
    return transport


@dataclass
class ShardPayload:
    """One batch's accumulator moments, in transit.

    Exactly one of ``moments`` (pickle transport) and ``shm_name``
    (shared-memory transport) is set.  ``pipe_bytes`` estimates what
    actually crossed the pool's result pipe for this shard.
    """

    n_samples: int
    fixed_n: int
    random_n: int
    moments: Optional[np.ndarray] = None  #: (2, 6, n_samples) float64
    shm_name: Optional[str] = None
    pipe_bytes: int = 0


def pack_shard(acc: TTestAccumulator, transport: str) -> ShardPayload:
    """Reduce an accumulator to its transportable moments (worker side).

    ``transport`` must already be concrete (:func:`resolve_transport`).
    """
    with trace("transport.pack", transport=transport):
        payload = _pack_shard(acc, transport)
    obs_metrics.inc(_M_PIPE_BYTES, payload.pipe_bytes)
    return payload


def _pack_shard(acc: TTestAccumulator, transport: str) -> ShardPayload:
    packed = np.stack([acc._fixed.sums, acc._random.sums])
    if transport == "pickle":
        return ShardPayload(
            n_samples=acc.n_samples,
            fixed_n=acc._fixed.n,
            random_n=acc._random.n,
            moments=packed,
            pipe_bytes=packed.nbytes + _PIPE_OVERHEAD,
        )
    from multiprocessing import resource_tracker

    shm = _create_segment(packed.nbytes)
    np.ndarray(packed.shape, np.float64, buffer=shm.buf)[:] = packed
    name = shm.name
    shm.close()
    # Ownership moves to the consumer, which unlinks after folding the
    # moments in.  Deregister from *our* resource tracker so a spawn
    # worker's tracker does not warn about (and double-free) a segment
    # someone else already released.
    try:  # pragma: no cover - tracker is an implementation detail
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass
    if _CHAOS_HOOK is not None:
        _CHAOS_HOOK(name)
    return ShardPayload(
        n_samples=acc.n_samples,
        fixed_n=acc._fixed.n,
        random_n=acc._random.n,
        shm_name=name,
        pipe_bytes=len(name) + _PIPE_OVERHEAD,
    )


def mark_shard_sent(payload: ShardPayload) -> ShardPayload:
    """Hand shard ownership to the consumer (worker side, pre-return).

    Drops the segment from the creator's registry so the creator's exit
    finalizer cannot unlink a segment the parent is about to read.  The
    send→unpack window is covered by the parent adopting the name on
    receipt (:func:`adopt_shard`) and, for payloads that never arrive,
    by the campaign-prefix scan in :func:`scavenge_orphans`.
    """
    if payload.shm_name is not None:
        _release_segment(payload.shm_name)
    return payload


def adopt_shard(payload: ShardPayload) -> ShardPayload:
    """Register a received shard's segment in this process (parent side).

    From this point the parent's registry (and exit finalizer) covers
    the segment even if :func:`unpack_shard` is never reached — the
    ownership hole a consumer death used to open.
    """
    if payload.shm_name is not None:
        _adopt_segment(payload.shm_name)
    return payload


def unpack_shard(payload: ShardPayload) -> TTestAccumulator:
    """Rebuild the worker's accumulator bit for bit (parent side).

    Releases the shared-memory segment when the payload carries one.

    Raises:
        TransportError: The segment vanished before it could be read
            (creator killed mid-handoff, or a scavenger raced us).
    """
    with trace("transport.unpack"):
        return _unpack_shard(payload)


def _unpack_shard(payload: ShardPayload) -> TTestAccumulator:
    acc = TTestAccumulator(payload.n_samples)
    acc._fixed.n = payload.fixed_n
    acc._random.n = payload.random_n
    if payload.shm_name is None:
        moments = payload.moments
        acc._fixed.sums[:] = moments[0]
        acc._random.sums[:] = moments[1]
        return acc
    from multiprocessing import shared_memory

    try:
        shm = shared_memory.SharedMemory(name=payload.shm_name)
    except FileNotFoundError as exc:
        _release_segment(payload.shm_name)
        raise TransportError(
            "unpack_shard", payload.shm_name, f"segment missing: {exc}"
        ) from exc
    try:
        moments = np.ndarray(
            (2, 6, payload.n_samples), np.float64, buffer=shm.buf
        )
        acc._fixed.sums[:] = moments[0]
        acc._random.sums[:] = moments[1]
    finally:
        shm.close()
        shm.unlink()
        _release_segment(payload.shm_name)
    return acc


@dataclass
class SharedTraceBuffer:
    """A raw ``(n_traces, n_samples)`` power matrix in shared memory.

    Opt-in path for runners that need the traces themselves (CPA
    attacks, trace dumps) rather than the accumulator: the producer
    :meth:`publish`-es a matrix, ships this handle (a name and a
    shape) through the pipe, and the consumer :meth:`materialise`-s it.
    """

    shm_name: str
    shape: Tuple[int, int]
    dtype_str: str

    @classmethod
    def publish(cls, traces: np.ndarray) -> "SharedTraceBuffer":
        """Copy ``traces`` into a fresh segment (producer side).

        The name stays in the producer's segment registry until a
        consumer :meth:`materialise`-s / :meth:`discard`-s it (which
        unlinks) or the producer exits (whose finalizer unlinks any
        still-existing segment) — a consumer that dies between send and
        read no longer leaks the segment forever.
        """
        from multiprocessing import resource_tracker

        traces = np.ascontiguousarray(traces)
        shm = _create_segment(traces.nbytes)
        np.ndarray(traces.shape, traces.dtype, buffer=shm.buf)[:] = traces
        name = shm.name
        shm.close()
        try:  # pragma: no cover - see pack_shard
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
        return cls(
            shm_name=name,
            shape=tuple(traces.shape),
            dtype_str=traces.dtype.str,
        )

    def materialise(self) -> np.ndarray:
        """Copy the matrix out and release the segment (consumer side).

        Raises:
            TransportError: The segment vanished before it could be
                read (producer died mid-handoff or already scavenged).
        """
        from multiprocessing import shared_memory

        try:
            shm = shared_memory.SharedMemory(name=self.shm_name)
        except FileNotFoundError as exc:
            _release_segment(self.shm_name)
            raise TransportError(
                "SharedTraceBuffer.materialise",
                self.shm_name,
                f"segment missing: {exc}",
            ) from exc
        try:
            return np.ndarray(
                self.shape, np.dtype(self.dtype_str), buffer=shm.buf
            ).copy()
        finally:
            shm.close()
            shm.unlink()
            _release_segment(self.shm_name)

    def discard(self) -> None:
        """Release the segment without reading it (idempotent)."""
        _unlink_quietly(self.shm_name)
        _release_segment(self.shm_name)
