"""Test Vector Leakage Assessment (TVLA) — Welch t-tests, orders 1..3.

The paper follows the non-specific fixed-vs-random methodology of
Goodwill et al. as refined by Bilgin et al. (refs. [15], [18]):

* first-order: plain Welch t-test between the fixed-plaintext and
  random-plaintext trace populations, per sample;
* second-order: traces are centered per class and squared before the
  t-test (centered product preprocessing);
* third-order: centered and standardised cubes.

The implementation is *streaming*: an accumulator keeps per-class raw
power sums up to the 6th moment, so campaigns of millions of traces run
in constant memory and can be fed batch by batch straight from the
vectorised simulator.

The paper's detection rule (Sec. VII-A) is also implemented: a design
is deemed leaky only if the |t| > 4.5 threshold is exceeded *at the
same time indexes across tests with different fixed plaintexts*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .stats import CampaignStats

__all__ = [
    "TTestAccumulator",
    "TvlaResult",
    "welch_t",
    "threshold_crossings",
    "consistent_leakage",
    "THRESHOLD",
]

#: The commonly applied TVLA decision threshold (red lines in Figs. 14-17).
THRESHOLD = 4.5


def welch_t(
    mean_a: np.ndarray,
    var_a: np.ndarray,
    n_a: float,
    mean_b: np.ndarray,
    var_b: np.ndarray,
    n_b: float,
) -> np.ndarray:
    """Per-sample Welch t-statistic from population summaries."""
    denom = np.sqrt(var_a / n_a + var_b / n_b)
    with np.errstate(divide="ignore", invalid="ignore"):
        t = (mean_a - mean_b) / denom
    return np.where(denom > 0, t, 0.0)


class _ClassMoments:
    """Raw power sums S_k = sum(x^k), k = 1..6, per sample."""

    __slots__ = ("n", "sums")

    def __init__(self, n_samples: int):
        self.n = 0
        self.sums = np.zeros((6, int(n_samples)), dtype=np.float64)

    def update(self, traces: np.ndarray) -> None:
        # Power is recorded in float32 (repro.sim.power); the cast here
        # is the float32 -> float64 boundary, and everything downstream
        # (powers, sums, merges) stays float64 — the shard-merge
        # bitwise-equality contract depends on it.
        x = traces.astype(np.float64, copy=False)
        self.n += x.shape[0]
        p = x
        for k in range(6):
            self.sums[k] += p.sum(axis=0)
            if k < 5:
                p = p * x

    def central_moments(self) -> Tuple[np.ndarray, ...]:
        """(mu, cm2..cm6) from the raw sums."""
        n = max(self.n, 1)
        m = self.sums / n  # raw moments M1..M6
        mu = m[0]
        mu2 = mu * mu
        mu3 = mu2 * mu
        cm2 = m[1] - mu2
        cm3 = m[2] - 3 * mu * m[1] + 2 * mu3
        cm4 = m[3] - 4 * mu * m[2] + 6 * mu2 * m[1] - 3 * mu2 * mu2
        cm5 = (
            m[4]
            - 5 * mu * m[3]
            + 10 * mu2 * m[2]
            - 10 * mu3 * m[1]
            + 4 * mu3 * mu2
        )
        cm6 = (
            m[5]
            - 6 * mu * m[4]
            + 15 * mu2 * m[3]
            - 20 * mu3 * m[2]
            + 15 * mu2 * mu2 * m[1]
            - 5 * mu3 * mu3
        )
        return mu, cm2, cm3, cm4, cm5, cm6


class TTestAccumulator:
    """Streaming fixed-vs-random t-test, orders 1..3.

    Feed batches with :meth:`update`; read statistics at any point with
    :meth:`t_stats`.
    """

    def __init__(self, n_samples: int):
        self.n_samples = int(n_samples)
        self._fixed = _ClassMoments(self.n_samples)
        self._random = _ClassMoments(self.n_samples)

    @property
    def n_traces(self) -> int:
        return self._fixed.n + self._random.n

    def update(self, traces: np.ndarray, fixed_mask: np.ndarray) -> None:
        """Add a batch.

        Args:
            traces: (n, n_samples) power matrix.
            fixed_mask: (n,) boolean — True for fixed-class traces.
        """
        if traces.shape[1] != self.n_samples:
            raise ValueError(
                f"expected {self.n_samples} samples, got {traces.shape[1]}"
            )
        fixed_mask = fixed_mask.astype(bool)
        if fixed_mask.any():
            self._fixed.update(traces[fixed_mask])
        if (~fixed_mask).any():
            self._random.update(traces[~fixed_mask])

    def merge(self, other: "TTestAccumulator") -> "TTestAccumulator":
        """Fold another accumulator's population into this one.

        Raw moment sums are additive, so a campaign can be sharded:
        accumulate disjoint batches into separate accumulators (e.g. in
        worker processes) and merge the shards afterwards.  Merging
        per-batch shards *in batch order* performs exactly the float64
        additions the serial accumulator would have performed, so the
        combined statistics are bit-identical to a serial run — this is
        what makes ``run_campaign(..., n_workers=k)`` reproducible.

        Returns ``self`` (so shards can be ``functools.reduce``-folded).
        """
        if other.n_samples != self.n_samples:
            raise ValueError(
                f"cannot merge accumulators with {other.n_samples} and "
                f"{self.n_samples} samples"
            )
        if (
            other._fixed.sums.dtype != np.float64
            or other._random.sums.dtype != np.float64
        ):  # pragma: no cover - guards hand-built shards
            raise TypeError(
                "shard moments must be float64 (raw-moment precision is "
                "part of the bitwise-reproducibility contract), got "
                f"{other._fixed.sums.dtype}/{other._random.sums.dtype}"
            )
        self._fixed.n += other._fixed.n
        self._fixed.sums += other._fixed.sums
        self._random.n += other._random.n
        self._random.sums += other._random.sums
        return self

    def state(self) -> Dict[str, np.ndarray]:
        """Checkpointable snapshot: plain integer/float64 arrays.

        The snapshot is exact (raw moment sums, no derived statistics),
        so ``from_state(acc.state())`` reproduces the accumulator bit
        for bit — resuming a campaign from a checkpoint and merging the
        remaining batches in order yields the same float64 addition
        sequence as the uninterrupted run.
        """
        return {
            "n_samples": np.asarray(self.n_samples, dtype=np.int64),
            "fixed_n": np.asarray(self._fixed.n, dtype=np.int64),
            "fixed_sums": self._fixed.sums.copy(),
            "random_n": np.asarray(self._random.n, dtype=np.int64),
            "random_sums": self._random.sums.copy(),
        }

    @classmethod
    def from_state(cls, state: "Dict[str, np.ndarray]") -> "TTestAccumulator":
        """Rebuild an accumulator from a :meth:`state` snapshot."""
        acc = cls(int(state["n_samples"]))
        acc._fixed.n = int(state["fixed_n"])
        acc._fixed.sums[:] = state["fixed_sums"]
        acc._random.n = int(state["random_n"])
        acc._random.sums[:] = state["random_sums"]
        return acc

    def t_stats(self, order: int = 1) -> np.ndarray:
        """Per-sample t-statistic at the requested order (1, 2 or 3)."""
        if order not in (1, 2, 3):
            raise ValueError("order must be 1, 2 or 3")
        out = []
        for cls in (self._fixed, self._random):
            mu, cm2, cm3, cm4, cm5, cm6 = cls.central_moments()
            if order == 1:
                mean, var = mu, cm2
            elif order == 2:
                # y = (x - mu)^2 : E[y] = cm2, Var[y] = cm4 - cm2^2
                mean = cm2
                var = cm4 - cm2 * cm2
            else:
                # y = ((x - mu)/sd)^3 : E[y] = cm3/sd^3,
                # Var[y] = cm6/cm2^3 - (cm3/cm2^1.5)^2
                with np.errstate(divide="ignore", invalid="ignore"):
                    sd3 = np.power(np.maximum(cm2, 1e-30), 1.5)
                    mean = cm3 / sd3
                    var = cm6 / np.maximum(cm2, 1e-30) ** 3 - mean * mean
            out.append((mean, np.maximum(var, 0.0), max(cls.n, 1)))
        (ma, va, na), (mb, vb, nb) = out
        return welch_t(ma, va, na, mb, vb, nb)

    def result(
        self, label: str = "", stats: "Optional[CampaignStats]" = None
    ) -> "TvlaResult":
        return TvlaResult(
            label=label,
            n_traces=self.n_traces,
            t1=self.t_stats(1),
            t2=self.t_stats(2),
            t3=self.t_stats(3),
            stats=stats,
        )


@dataclass
class TvlaResult:
    """Orders 1..3 t-statistics of one fixed-vs-random test.

    ``stats`` carries the acquisition observability
    (:class:`repro.leakage.stats.CampaignStats`) when the result came
    from a campaign runner; it never affects the statistics.
    """

    label: str
    n_traces: int
    t1: np.ndarray
    t2: np.ndarray
    t3: np.ndarray
    stats: "Optional[CampaignStats]" = None

    def max_abs(self, order: int = 1) -> float:
        return float(np.max(np.abs(self._t(order)))) if self._t(order).size else 0.0

    def leaks(self, order: int = 1, threshold: float = THRESHOLD) -> bool:
        return self.max_abs(order) > threshold

    def _t(self, order: int) -> np.ndarray:
        return {1: self.t1, 2: self.t2, 3: self.t3}[order]

    def crossings(self, order: int = 1, threshold: float = THRESHOLD) -> np.ndarray:
        """Sample indexes where |t| exceeds the threshold."""
        return threshold_crossings(self._t(order), threshold)

    def summary(self) -> str:
        return (
            f"{self.label or 'TVLA'}: n={self.n_traces}  "
            f"max|t1|={self.max_abs(1):6.2f}  "
            f"max|t2|={self.max_abs(2):6.2f}  "
            f"max|t3|={self.max_abs(3):6.2f}  "
            f"[{'LEAKS' if self.leaks(1) else 'no 1st-order evidence'}]"
        )


def threshold_crossings(t: np.ndarray, threshold: float = THRESHOLD) -> np.ndarray:
    """Indexes of samples with |t| > threshold."""
    return np.nonzero(np.abs(t) > threshold)[0]


def consistent_leakage(
    results: Sequence[TvlaResult],
    order: int = 1,
    threshold: float = THRESHOLD,
) -> bool:
    """The paper's cross-plaintext consistency rule (Sec. VII-A).

    Minor threshold crossings only count as leakage when they occur *at
    the same time indexes* across the tests with different fixed
    plaintexts.  Returns True iff some sample crosses in every result.
    """
    if not results:
        return False
    common: Optional[set] = None
    for r in results:
        idx = set(r.crossings(order, threshold).tolist())
        common = idx if common is None else (common & idx)
        if not common:
            return False
    return bool(common)
