"""Fixed-vs-random acquisition campaigns.

Glue between a *trace source* (anything that can simulate a batch of
power traces: a gadget bank, a masked DES core) and the streaming TVLA
accumulator.  The harness owns:

* the fixed/random class assignment (random interleaving, as on the
  real measurement setup),
* the measurement-noise injection (additive Gaussian — the simulator's
  traces are noiseless, the SAKURA-G's are not; EXPERIMENTS.md records
  the sigma used per experiment),
* batching, so campaigns stream through the vectorised simulator in
  constant memory.

Parallel acquisition
--------------------
Every batch derives its random stream from ``(campaign seed, batch
index)``, so any batch can be simulated independently of the others.
``run_campaign`` / ``detect_leakage_traces`` / ``run_multi_fixed``
exploit this with ``n_workers``: batches are sharded across a process
pool, each worker returns a per-batch :class:`TTestAccumulator`, and
the shards are merged *in batch order* — which reproduces the serial
run's float64 addition sequence bit for bit (see
:meth:`TTestAccumulator.merge`).  A parallel campaign is therefore not
"statistically equivalent" to the serial one; it is the same result.
"""

from __future__ import annotations

import multiprocessing
import traceback
from dataclasses import dataclass, replace
from typing import Callable, Iterator, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from .tvla import TTestAccumulator, TvlaResult

__all__ = [
    "TraceSource",
    "CampaignConfig",
    "CampaignBatchError",
    "run_campaign",
    "run_multi_fixed",
    "detect_leakage_traces",
]


class CampaignBatchError(RuntimeError):
    """A batch failed during acquisition.

    Wraps the underlying source/simulator exception with the campaign
    context a bare pickled traceback lacks: which batch died, of which
    campaign.  The failing batch is re-runnable in isolation via
    ``_acquire_batch(source, config, batch_index, n)``.

    Attributes:
        batch_index: Index of the failing batch.
        label: ``config.label`` of the campaign.
        worker_traceback: Formatted traceback from the worker process
            (empty for in-process failures, where ``__cause__`` carries
            the original exception instead).
    """

    def __init__(
        self,
        batch_index: int,
        label: str,
        message: str,
        worker_traceback: str = "",
    ):
        detail = f"\n--- worker traceback ---\n{worker_traceback}" if worker_traceback else ""
        super().__init__(
            f"batch {batch_index} of campaign {label!r} failed: {message}{detail}"
        )
        self.batch_index = batch_index
        self.label = label
        self.worker_traceback = worker_traceback


class TraceSource(Protocol):
    """A simulated device under test.

    ``n_samples`` is the trace length; :meth:`acquire` simulates one
    batch: traces where ``fixed_mask`` is True must use the fixed
    stimulus, the rest a fresh random stimulus.

    Sources used with ``n_workers > 1`` must be picklable (the pool is
    forked where the platform allows it, so this only bites on spawn
    platforms), and :meth:`acquire` must derive all randomness from the
    passed-in generator — module- or instance-level RNG state would
    break the per-batch reproducibility contract.
    """

    n_samples: int

    def acquire(self, fixed_mask: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return an (len(fixed_mask), n_samples) power matrix."""
        ...


@dataclass
class CampaignConfig:
    """Parameters of one fixed-vs-random campaign.

    Attributes:
        n_traces: Total traces (fixed + random).
        batch_size: Traces per simulator batch.
        noise_sigma: Additive Gaussian measurement noise (std-dev, in
            units of one gate-toggle energy).
        seed: Campaign seed (class assignment, stimuli, noise).  Batch
            ``i`` uses the spawned stream ``default_rng([seed, i])``,
            independent of how batches are distributed over workers.
        label: Free-form experiment label carried into the result.
        n_workers: Default process count for campaign runners; the
            ``n_workers`` argument of :func:`run_campaign` et al.
            overrides it per call.  1 = in-process serial.
    """

    n_traces: int = 20000
    batch_size: int = 4000
    noise_sigma: float = 1.0
    seed: int = 0
    label: str = ""
    n_workers: int = 1

    def __post_init__(self) -> None:
        if self.n_traces <= 0:
            raise ValueError(
                f"n_traces must be > 0, got {self.n_traces} (an empty "
                "campaign has no batches and would silently produce "
                "all-zero statistics)"
            )
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be > 0, got {self.batch_size}")
        if self.noise_sigma < 0:
            raise ValueError(
                f"noise_sigma must be >= 0, got {self.noise_sigma}"
            )


# ----------------------------------------------------------------------
# batching
# ----------------------------------------------------------------------
def _batch_plan(config: CampaignConfig) -> List[Tuple[int, int]]:
    """``(batch_index, batch_size)`` for every batch of the campaign."""
    plan: List[Tuple[int, int]] = []
    remaining = config.n_traces
    while remaining > 0:
        n = min(config.batch_size, remaining)
        remaining -= n
        plan.append((len(plan), n))
    return plan


def _acquire_batch(
    source: TraceSource, config: CampaignConfig, index: int, n: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Simulate batch ``index``: class assignment, traces, noise.

    This is the single definition of the per-batch acquisition protocol
    (formerly duplicated between ``run_campaign`` and
    ``detect_leakage_traces``).  The batch's generator is seeded with
    ``[campaign seed, batch index]``, making every batch reproducible
    in isolation — the property the parallel runner relies on.
    """
    rng = np.random.default_rng([config.seed, index])
    fixed_mask = rng.integers(0, 2, size=n).astype(bool)
    traces = source.acquire(fixed_mask, rng)
    if config.noise_sigma > 0:
        traces = traces + rng.normal(
            0.0, config.noise_sigma, size=traces.shape
        ).astype(traces.dtype, copy=False)
    return fixed_mask, traces


def _batch_accumulator(
    source: TraceSource, config: CampaignConfig, index: int, n: int
) -> TTestAccumulator:
    """One batch folded into a fresh per-batch accumulator (a shard)."""
    fixed_mask, traces = _acquire_batch(source, config, index, n)
    acc = TTestAccumulator(source.n_samples)
    acc.update(traces, fixed_mask)
    return acc


# Worker-process state, installed once per worker by the pool
# initializer so the source/config are not re-pickled per task.
_WORKER_STATE: Optional[Tuple[TraceSource, CampaignConfig]] = None


def _init_worker(source: TraceSource, config: CampaignConfig) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (source, config)


@dataclass
class _WorkerFailure:
    """Sentinel a worker returns instead of raising.

    Exceptions from arbitrary sources may not survive pickling back to
    the parent; the sentinel always does, and carries the failing batch
    index plus the formatted worker traceback for the parent to wrap
    into a :class:`CampaignBatchError`.
    """

    index: int
    message: str
    traceback: str


def _worker_batch(item: Tuple[int, int]) -> "TTestAccumulator | _WorkerFailure":
    index, n = item
    source, config = _WORKER_STATE  # type: ignore[misc]
    try:
        return _batch_accumulator(source, config, index, n)
    except Exception as exc:
        return _WorkerFailure(
            index, f"{type(exc).__name__}: {exc}", traceback.format_exc()
        )


def _iter_batch_accumulators(
    source: TraceSource,
    config: CampaignConfig,
    n_workers: Optional[int] = None,
) -> Iterator[TTestAccumulator]:
    """Yield one accumulator shard per batch, in batch order.

    ``n_workers <= 1``: batches are simulated in-process.  Otherwise a
    process pool shards them; ``imap`` keeps the yield order equal to
    the batch order, so consumers merging shards as they arrive get the
    serial result bit for bit.  The pool prefers the ``fork`` start
    method (no pickling of the source on dispatch) and falls back to
    the platform default.
    """
    plan = _batch_plan(config)
    if n_workers is None:
        n_workers = config.n_workers
    n_workers = max(1, min(int(n_workers), len(plan)))
    if n_workers == 1:
        for index, n in plan:
            try:
                yield _batch_accumulator(source, config, index, n)
            except Exception as exc:
                raise CampaignBatchError(
                    index, config.label, f"{type(exc).__name__}: {exc}"
                ) from exc
        return
    with _campaign_pool(n_workers, source, config) as pool:
        for shard in pool.imap(_worker_batch, plan):
            if isinstance(shard, _WorkerFailure):
                raise CampaignBatchError(
                    shard.index, config.label, shard.message, shard.traceback
                )
            yield shard


def _campaign_pool(
    n_workers: int, source: TraceSource, config: CampaignConfig
) -> "multiprocessing.pool.Pool":
    """Worker pool primed with the campaign state.

    Prefers the ``fork`` start method (no pickling of the source on
    dispatch) and falls back to the platform default.
    """
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        ctx = multiprocessing.get_context()
    return ctx.Pool(n_workers, initializer=_init_worker, initargs=(source, config))


# ----------------------------------------------------------------------
# campaign runners
# ----------------------------------------------------------------------
def run_campaign(
    source: TraceSource,
    config: CampaignConfig,
    n_workers: Optional[int] = None,
) -> TvlaResult:
    """Run one fixed-vs-random TVLA campaign against ``source``.

    Args:
        source: Device under test.
        config: Campaign parameters.
        n_workers: Process count; ``None`` uses ``config.n_workers``.
            Any value yields the identical :class:`TvlaResult`.
    """
    acc = TTestAccumulator(source.n_samples)
    for shard in _iter_batch_accumulators(source, config, n_workers):
        acc.merge(shard)
    return acc.result(label=config.label)


def detect_leakage_traces(
    source: TraceSource,
    config: CampaignConfig,
    order: int = 1,
    threshold: float = 4.5,
    consecutive: int = 2,
    n_workers: Optional[int] = None,
) -> Tuple[Optional[int], TvlaResult]:
    """How many traces until TVLA flags leakage?

    Streams batches and checks the t-statistic after each one; reports
    the trace count at which |t| exceeded the threshold in
    ``consecutive`` successive checks (debouncing statistical flukes).
    This regenerates the paper's "significant peaks with as little as
    12 000 traces" PRNG-off sanity numbers (Fig. 14a / 17d).

    With ``n_workers > 1`` batches are simulated ahead in parallel but
    *checked* strictly in batch order, so the detection point is the
    same as the serial run's; workers simulating batches beyond the
    detection point are cancelled when the generator is closed.

    Returns:
        ``(n_traces_at_detection or None, final TvlaResult)``.
    """
    acc = TTestAccumulator(source.n_samples)
    hits = 0
    detected: Optional[int] = None
    shards = _iter_batch_accumulators(source, config, n_workers)
    try:
        for shard in shards:
            acc.merge(shard)
            t = acc.t_stats(order)
            if np.max(np.abs(t)) > threshold:
                hits += 1
                if hits >= consecutive and detected is None:
                    detected = acc.n_traces
                    break
            else:
                hits = 0
    finally:
        shards.close()
    return detected, acc.result(label=config.label)


def run_multi_fixed(
    make_source: Callable[[int], TraceSource],
    config: CampaignConfig,
    n_fixed: int = 3,
    n_workers: Optional[int] = None,
) -> List[TvlaResult]:
    """The paper's protocol: repeat the test with several fixed plaintexts.

    Args:
        make_source: Factory mapping a fixed-plaintext index (0..n-1) to
            a trace source configured with that fixed stimulus.
        config: Shared campaign parameters (seed is offset per test).
        n_fixed: Number of different fixed plaintexts (paper uses 3).
        n_workers: Forwarded to each :func:`run_campaign`.

    Returns:
        One :class:`TvlaResult` per fixed plaintext; combine with
        :func:`repro.leakage.tvla.consistent_leakage`.
    """
    results = []
    for i in range(n_fixed):
        cfg = replace(
            config,
            seed=config.seed + 1000 * (i + 1),
            label=f"{config.label} fixed#{i}" if config.label else f"fixed#{i}",
        )
        results.append(run_campaign(make_source(i), cfg, n_workers=n_workers))
    return results
