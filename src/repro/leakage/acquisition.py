"""Fixed-vs-random acquisition campaigns.

Glue between a *trace source* (anything that can simulate a batch of
power traces: a gadget bank, a masked DES core) and the streaming TVLA
accumulator.  The harness owns:

* the fixed/random class assignment (random interleaving, as on the
  real measurement setup),
* the measurement-noise injection (additive Gaussian — the simulator's
  traces are noiseless, the SAKURA-G's are not; EXPERIMENTS.md records
  the sigma used per experiment),
* batching, so campaigns stream through the vectorised simulator in
  constant memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from .tvla import TTestAccumulator, TvlaResult

__all__ = [
    "TraceSource",
    "CampaignConfig",
    "run_campaign",
    "run_multi_fixed",
    "detect_leakage_traces",
]


class TraceSource(Protocol):
    """A simulated device under test.

    ``n_samples`` is the trace length; :meth:`acquire` simulates one
    batch: traces where ``fixed_mask`` is True must use the fixed
    stimulus, the rest a fresh random stimulus.
    """

    n_samples: int

    def acquire(self, fixed_mask: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return an (len(fixed_mask), n_samples) power matrix."""
        ...


@dataclass
class CampaignConfig:
    """Parameters of one fixed-vs-random campaign.

    Attributes:
        n_traces: Total traces (fixed + random).
        batch_size: Traces per simulator batch.
        noise_sigma: Additive Gaussian measurement noise (std-dev, in
            units of one gate-toggle energy).
        seed: Campaign seed (class assignment, stimuli, noise).
        label: Free-form experiment label carried into the result.
    """

    n_traces: int = 20000
    batch_size: int = 4000
    noise_sigma: float = 1.0
    seed: int = 0
    label: str = ""


def run_campaign(source: TraceSource, config: CampaignConfig) -> TvlaResult:
    """Run one fixed-vs-random TVLA campaign against ``source``."""
    rng = np.random.default_rng(config.seed)
    acc = TTestAccumulator(source.n_samples)
    remaining = config.n_traces
    while remaining > 0:
        n = min(config.batch_size, remaining)
        remaining -= n
        fixed_mask = rng.integers(0, 2, size=n).astype(bool)
        traces = source.acquire(fixed_mask, rng)
        if config.noise_sigma > 0:
            traces = traces + rng.normal(
                0.0, config.noise_sigma, size=traces.shape
            ).astype(traces.dtype, copy=False)
        acc.update(traces, fixed_mask)
    return acc.result(label=config.label)


def detect_leakage_traces(
    source: TraceSource,
    config: CampaignConfig,
    order: int = 1,
    threshold: float = 4.5,
    consecutive: int = 2,
) -> Tuple[Optional[int], TvlaResult]:
    """How many traces until TVLA flags leakage?

    Streams batches and checks the t-statistic after each one; reports
    the trace count at which |t| exceeded the threshold in
    ``consecutive`` successive checks (debouncing statistical flukes).
    This regenerates the paper's "significant peaks with as little as
    12 000 traces" PRNG-off sanity numbers (Fig. 14a / 17d).

    Returns:
        ``(n_traces_at_detection or None, final TvlaResult)``.
    """
    rng = np.random.default_rng(config.seed)
    acc = TTestAccumulator(source.n_samples)
    remaining = config.n_traces
    hits = 0
    detected: Optional[int] = None
    while remaining > 0:
        n = min(config.batch_size, remaining)
        remaining -= n
        fixed_mask = rng.integers(0, 2, size=n).astype(bool)
        traces = source.acquire(fixed_mask, rng)
        if config.noise_sigma > 0:
            traces = traces + rng.normal(
                0.0, config.noise_sigma, size=traces.shape
            ).astype(traces.dtype, copy=False)
        acc.update(traces, fixed_mask)
        t = acc.t_stats(order)
        if np.max(np.abs(t)) > threshold:
            hits += 1
            if hits >= consecutive and detected is None:
                detected = acc.n_traces
                break
        else:
            hits = 0
    return detected, acc.result(label=config.label)


def run_multi_fixed(
    make_source: Callable[[int], TraceSource],
    config: CampaignConfig,
    n_fixed: int = 3,
) -> List[TvlaResult]:
    """The paper's protocol: repeat the test with several fixed plaintexts.

    Args:
        make_source: Factory mapping a fixed-plaintext index (0..n-1) to
            a trace source configured with that fixed stimulus.
        config: Shared campaign parameters (seed is offset per test).
        n_fixed: Number of different fixed plaintexts (paper uses 3).

    Returns:
        One :class:`TvlaResult` per fixed plaintext; combine with
        :func:`repro.leakage.tvla.consistent_leakage`.
    """
    results = []
    for i in range(n_fixed):
        cfg = CampaignConfig(
            n_traces=config.n_traces,
            batch_size=config.batch_size,
            noise_sigma=config.noise_sigma,
            seed=config.seed + 1000 * (i + 1),
            label=f"{config.label} fixed#{i}" if config.label else f"fixed#{i}",
        )
        results.append(run_campaign(make_source(i), cfg))
    return results
