"""Fixed-vs-random acquisition campaigns.

Glue between a *trace source* (anything that can simulate a batch of
power traces: a gadget bank, a masked DES core) and the streaming TVLA
accumulator.  The harness owns:

* the fixed/random class assignment (random interleaving, as on the
  real measurement setup),
* the measurement-noise injection (additive Gaussian — the simulator's
  traces are noiseless, the SAKURA-G's are not; EXPERIMENTS.md records
  the sigma used per experiment),
* batching, so campaigns stream through the vectorised simulator in
  constant memory.

Parallel acquisition
--------------------
Every batch derives its random stream from ``(campaign seed, batch
index)``, so any batch can be simulated independently of the others.
``run_campaign`` / ``detect_leakage_traces`` / ``run_multi_fixed``
exploit this with ``n_workers``: batches are sharded across a process
pool, each worker reduces its batch to the per-batch
:class:`TTestAccumulator` *moments* (never raw traces — see
:mod:`repro.leakage.transport`), and the shards are merged *in batch
order* — which reproduces the serial run's float64 addition sequence
bit for bit (see :meth:`TTestAccumulator.merge`).  A parallel campaign
is therefore not "statistically equivalent" to the serial one; it is
the same result.

For parallelism to actually pay, three things have to hold, and this
module enforces all three:

1. **Cheap shard transport.**  Workers return one contiguous moment
   buffer per batch (``transport="pickle"``) or just a shared-memory
   segment name (``transport="shared_memory"``); ``"auto"`` picks by
   payload size.  Raw power matrices never cross the pipe.
2. **Warm schedule caches.**  Sources exposing ``warmup()`` are warmed
   *in the parent before forking*, so every worker inherits the
   compiled event schedules instead of recompiling them; under
   ``spawn`` each worker warms itself once in ``_init_worker``.  The
   warmed circuits are pinned — a structural edit mid-campaign raises
   :class:`repro.sim.compiled.StaleScheduleError` instead of silently
   simulating a different device.
3. **A sane worker count.**  ``n_workers="auto"`` resolves against
   ``os.cpu_count()``; an explicit request exceeding the core count
   triggers an :class:`OversubscriptionWarning` (never again a silent
   4-workers-on-1-core "benchmark").  :func:`suggest_batch_size`
   documents the batch-size heuristic; ``CampaignConfig.autotune()``
   applies both.

Every runner attaches a :class:`repro.leakage.stats.CampaignStats` to
its :class:`TvlaResult` so throughput regressions are observable, not
anecdotal.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
import warnings
from dataclasses import dataclass, replace
from typing import Callable, Iterator, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from ..obs import metrics as obs_metrics
from ..obs.summary import campaign_phases
from ..obs.trace import (
    adopt_trace_context,
    get_tracer,
    ingest_spans,
    trace,
    trace_context,
    tracing_enabled,
)
from ..sim.bitpack import LANE_BITS, resolve_pack_traces
from ..sim.compiled import pin_schedule_cache, schedule_cache_counters
from .stats import BatchRecord, CampaignStats

#: Metric name of the recorder clamp counter (see
#: ``repro.sim.power.PowerRecorder._note_clamped``); diffed per batch
#: into :attr:`BatchRecord.clamped_events`.
_M_CLAMPED = "power.clamped_events"
from .transport import (
    ShardPayload,
    adopt_shard,
    mark_shard_sent,
    new_campaign_prefix,
    pack_shard,
    resolve_transport,
    scavenge_orphans,
    segment_prefix,
    set_segment_prefix,
    unpack_shard,
)
from .tvla import TTestAccumulator, TvlaResult

__all__ = [
    "TraceSource",
    "CampaignConfig",
    "CampaignBatchError",
    "OversubscriptionWarning",
    "resolve_n_workers",
    "suggest_batch_size",
    "run_campaign",
    "run_multi_fixed",
    "detect_leakage_traces",
]


class CampaignBatchError(RuntimeError):
    """A batch failed during acquisition.

    Wraps the underlying source/simulator exception with the campaign
    context a bare pickled traceback lacks: which batch died, of which
    campaign.  The failing batch is re-runnable in isolation via
    ``_acquire_batch(source, config, batch_index, n)``.

    Attributes:
        batch_index: Index of the failing batch.
        label: ``config.label`` of the campaign.
        worker_traceback: Formatted traceback from the worker process
            (empty for in-process failures, where ``__cause__`` carries
            the original exception instead).
    """

    def __init__(
        self,
        batch_index: int,
        label: str,
        message: str,
        worker_traceback: str = "",
    ):
        detail = f"\n--- worker traceback ---\n{worker_traceback}" if worker_traceback else ""
        super().__init__(
            f"batch {batch_index} of campaign {label!r} failed: {message}{detail}"
        )
        self.batch_index = batch_index
        self.label = label
        self.worker_traceback = worker_traceback


class OversubscriptionWarning(RuntimeWarning):
    """More campaign workers requested than the host has CPUs.

    Oversubscribed pools *lose* throughput (context switching plus
    transport overhead with zero extra compute), which is how the v1
    bench recorded a 0.92x "speedup" for 4 workers on 1 core.  The
    request is honoured — CI boxes legitimately oversubscribe for
    correctness tests — but never silently.
    """


class TraceSource(Protocol):
    """A simulated device under test.

    ``n_samples`` is the trace length; :meth:`acquire` simulates one
    batch: traces where ``fixed_mask`` is True must use the fixed
    stimulus, the rest a fresh random stimulus.

    Sources used with ``n_workers > 1`` must be picklable (under the
    ``spawn`` start method the source is re-pickled into every worker;
    ``fork`` inherits it), and :meth:`acquire` must derive all
    randomness from the passed-in generator — module- or
    instance-level RNG state would break the per-batch reproducibility
    contract.

    Sources backed by the glitch simulator should additionally expose
    ``warmup() -> Sequence[Circuit]``: simulate one throwaway trace so
    every event-schedule the campaign will replay is compiled, and
    return the circuits involved.  The campaign runners call it once
    per process (parent before fork, workers under spawn) and pin the
    returned circuits' schedule caches for the campaign's duration.
    """

    n_samples: int

    def acquire(self, fixed_mask: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return an (len(fixed_mask), n_samples) power matrix."""
        ...


@dataclass
class CampaignConfig:
    """Parameters of one fixed-vs-random campaign.

    Attributes:
        n_traces: Total traces (fixed + random).
        batch_size: Traces per simulator batch.
        noise_sigma: Additive Gaussian measurement noise (std-dev, in
            units of one gate-toggle energy).
        seed: Campaign seed (class assignment, stimuli, noise).  Batch
            ``i`` uses the spawned stream ``default_rng([seed, i])``,
            independent of how batches are distributed over workers.
        label: Free-form experiment label carried into the result.
        n_workers: Default process count for campaign runners; the
            ``n_workers`` argument of :func:`run_campaign` et al.
            overrides it per call.  1 = in-process serial; ``"auto"``
            resolves against ``os.cpu_count()`` (see
            :func:`resolve_n_workers`).
        transport: Shard transport for parallel runs — ``"auto"``
            (default), ``"pickle"`` or ``"shared_memory"``; see
            :mod:`repro.leakage.transport`.
        start_method: Process start method for the worker pool.
            ``None`` prefers ``fork`` (workers inherit the warmed
            schedule cache) with the platform default as fallback;
            ``"spawn"`` / ``"forkserver"`` force a re-pickled cold
            start (results stay bitwise identical either way).
        pack_traces: Simulation engine selection, pushed onto sources
            that expose a ``pack_traces`` attribute before each batch:
            ``False`` = boolean arrays, ``True`` = 64-traces-per-uint64
            bit-packed lanes, ``"auto"`` (default) = packed for batches
            of 64+ traces (see :mod:`repro.sim.bitpack`).  Either
            engine produces bitwise-identical t-statistics; the shard
            transport carries float64 moments and is unaffected.  A
            ragged final batch (``batch % 64 != 0``) is handled by
            padding the last lane with copies of the final trace —
            exact, but the pad bits are wasted work, so
            :func:`suggest_batch_size` rounds packed batches to lane
            multiples.
    """

    n_traces: int = 20000
    batch_size: int = 4000
    noise_sigma: float = 1.0
    seed: int = 0
    label: str = ""
    n_workers: "int | str" = 1
    transport: str = "auto"
    start_method: Optional[str] = None
    pack_traces: "bool | str" = "auto"

    def __post_init__(self) -> None:
        if self.n_traces <= 0:
            raise ValueError(
                f"n_traces must be > 0, got {self.n_traces} (an empty "
                "campaign has no batches and would silently produce "
                "all-zero statistics)"
            )
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be > 0, got {self.batch_size}")
        if self.noise_sigma < 0:
            raise ValueError(
                f"noise_sigma must be >= 0, got {self.noise_sigma}"
            )
        if isinstance(self.n_workers, str):
            if self.n_workers != "auto":
                raise ValueError(
                    f"n_workers must be an int >= 1 or 'auto', "
                    f"got {self.n_workers!r}"
                )
        elif self.n_workers < 1:
            raise ValueError(
                f"n_workers must be an int >= 1 or 'auto', got {self.n_workers}"
            )
        # Fail on typos now, not inside a worker an hour into the run.
        resolve_transport(self.transport, 1)
        resolve_pack_traces(self.pack_traces, self.batch_size)
        if self.start_method is not None:
            if self.start_method not in multiprocessing.get_all_start_methods():
                raise ValueError(
                    f"start_method {self.start_method!r} not available; "
                    f"this platform offers "
                    f"{multiprocessing.get_all_start_methods()}"
                )

    def autotune(self, cpu_count: Optional[int] = None) -> "CampaignConfig":
        """A copy with ``n_workers`` and ``batch_size`` tuned to the host.

        Workers: one per CPU, but never more than the campaign has
        batches of :func:`suggest_batch_size` traces to fill.  See that
        function for the batch-size heuristic.
        """
        cpu = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
        workers = max(1, min(cpu, self.n_traces // _MIN_AUTO_BATCH or 1))
        batch = suggest_batch_size(
            self.n_traces, workers, pack_traces=self.pack_traces
        )
        return replace(self, n_workers=workers, batch_size=batch)


#: Autotuned batches never go below this (vectorised simulation and
#: accumulator updates amortise poorly under it) ...
_MIN_AUTO_BATCH = 256
#: ... nor above this (bounds the per-worker trace matrix residency).
_MAX_AUTO_BATCH = 8192


def suggest_batch_size(
    n_traces: int,
    n_workers: int,
    pack_traces: "bool | str" = False,
    recorder=None,
) -> int:
    """Batch-size heuristic for a campaign of ``n_traces``.

    Three pressures, in priority order:

    1. **Load balance** — at least ~4 batches per worker, so the pool's
       dynamic dispatch can even out per-batch time variance and the
       campaign tail is short.
    2. **Vectorisation** — at least :data:`_MIN_AUTO_BATCH` traces per
       batch, below which per-batch fixed costs (RNG spawn, simulator
       setup, shard transport) dominate the numpy work.
    3. **Memory** — at most :data:`_MAX_AUTO_BATCH` traces per batch,
       bounding each worker's ``(batch, n_samples)`` float32 residency.

    When ``pack_traces`` selects the bit-packed engine for the
    suggested size, the size is additionally rounded down to a multiple
    of the 64-trace lane width: a ragged batch is simulated exactly (the
    final lane is padded with copies of its last trace and the padding
    is stripped before recording) but those pad bits are pure overhead,
    so lane-aligned batches are strictly better when the total allows
    it.  The campaign's *final* batch may still be ragged when
    ``n_traces`` itself is not lane-aligned — that is the padded case
    the equivalence tests pin down.

    ``recorder`` (optional) joins the ``"auto"`` resolution: when the
    recorder the batches will feed has no packed accumulation path
    (coupling partners, transient capture — see
    :func:`repro.sim.bitpack.recorder_accepts_packed`), ``"auto"``
    declines to pack and the lane rounding is skipped, exactly like the
    engines themselves will decline at batch time.
    """
    target = n_traces // max(1, 4 * n_workers)
    batch = max(
        1, min(_MAX_AUTO_BATCH, max(_MIN_AUTO_BATCH, target), n_traces)
    )
    if batch >= LANE_BITS and resolve_pack_traces(
        pack_traces, batch, recorder
    ):
        batch -= batch % LANE_BITS
    return batch


def resolve_n_workers(
    requested: "int | str",
    n_batches: int,
    cpu_count: Optional[int] = None,
) -> int:
    """Resolve a worker request against the host and the batch plan.

    ``"auto"`` becomes ``min(cpu_count, n_batches)``.  An explicit
    integer is clamped to the batch count (idle workers are pointless)
    and honoured beyond the CPU count — but loudly, via
    :class:`OversubscriptionWarning`.
    """
    cpu = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    if requested == "auto":
        return max(1, min(cpu, n_batches))
    n = max(1, min(int(requested), n_batches))
    if n > 1 and n > cpu:
        warnings.warn(
            f"campaign requests {n} workers on a {cpu}-CPU host; "
            "oversubscription adds transport and scheduling overhead "
            "without adding compute (use n_workers='auto' to match the "
            "host)",
            OversubscriptionWarning,
            stacklevel=3,
        )
    return n


# ----------------------------------------------------------------------
# batching
# ----------------------------------------------------------------------
def _batch_plan(config: CampaignConfig) -> List[Tuple[int, int]]:
    """``(batch_index, batch_size)`` for every batch of the campaign."""
    plan: List[Tuple[int, int]] = []
    remaining = config.n_traces
    while remaining > 0:
        n = min(config.batch_size, remaining)
        remaining -= n
        plan.append((len(plan), n))
    return plan


def _acquire_batch(
    source: TraceSource, config: CampaignConfig, index: int, n: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Simulate batch ``index``: class assignment, traces, noise.

    This is the single definition of the per-batch acquisition protocol
    (formerly duplicated between ``run_campaign`` and
    ``detect_leakage_traces``).  The batch's generator is seeded with
    ``[campaign seed, batch index]``, making every batch reproducible
    in isolation — the property the parallel runner relies on.
    """
    rng = np.random.default_rng([config.seed, index])
    fixed_mask = rng.integers(0, 2, size=n).astype(bool)
    if hasattr(source, "pack_traces"):
        # Push the campaign's engine selection onto the source (the
        # documented contract for simulator-backed sources); sources
        # without the attribute simply don't support packing.
        source.pack_traces = config.pack_traces
    with trace("batch.simulate", index=index, n=n):
        traces = source.acquire(fixed_mask, rng)
    if config.noise_sigma > 0:
        with trace("batch.noise", index=index):
            traces = traces + rng.normal(
                0.0, config.noise_sigma, size=traces.shape
            ).astype(traces.dtype, copy=False)
    return fixed_mask, traces


def _batch_accumulator(
    source: TraceSource, config: CampaignConfig, index: int, n: int
) -> TTestAccumulator:
    """One batch folded into a fresh per-batch accumulator (a shard)."""
    fixed_mask, traces = _acquire_batch(source, config, index, n)
    acc = TTestAccumulator(source.n_samples)
    with trace("batch.accumulate", index=index):
        acc.update(traces, fixed_mask)
    return acc


def _timed_batch(
    source: TraceSource, config: CampaignConfig, index: int, n: int
) -> Tuple[TTestAccumulator, BatchRecord]:
    """One batch plus its :class:`BatchRecord` (time, cache deltas)."""
    c0 = schedule_cache_counters()
    clamped0 = obs_metrics.counter_value(_M_CLAMPED)
    t0 = time.perf_counter()
    with trace("campaign.batch", index=index, n=n):
        acc = _batch_accumulator(source, config, index, n)
    seconds = time.perf_counter() - t0
    c1 = schedule_cache_counters()
    return acc, BatchRecord(
        index=index,
        n_traces=n,
        seconds=seconds,
        schedule_compiles=c1["compiles"] - c0["compiles"],
        schedule_replays=c1["hits"] - c0["hits"],
        clamped_events=int(obs_metrics.counter_value(_M_CLAMPED) - clamped0),
    )


def _warm_source(source: TraceSource) -> float:
    """Warm and pin the source's schedule caches; returns seconds spent.

    No-op (0.0) for sources without a ``warmup()`` method.  Runs once
    per process: in the parent before a ``fork`` pool is built (the
    workers inherit the warm cache through copy-on-write), and inside
    ``_init_worker`` (a cache hit under ``fork``, the real warm-up
    under ``spawn``).
    """
    warm = getattr(source, "warmup", None)
    if warm is None:
        return 0.0
    c0 = schedule_cache_counters()
    t0 = time.perf_counter()
    with trace("campaign.warmup"):
        circuits = warm() or ()
        for circuit in circuits:
            pin_schedule_cache(circuit)
    seconds = time.perf_counter() - t0
    # Re-attribute the warm-up's cache activity to dedicated metrics,
    # so the batch-time ``schedule_cache.hits``/``compiles`` counters
    # reconcile exactly with the CampaignStats per-batch deltas (whose
    # documented contract excludes warm-up).
    c1 = schedule_cache_counters()
    for key, metric in (("hits", "hits"), ("compiles", "compiles")):
        delta = c1[key] - c0[key]
        if delta:
            obs_metrics.inc(f"schedule_cache.warmup_{metric}", delta)
            obs_metrics.inc(f"schedule_cache.{metric}", -delta)
    return seconds


# Worker-process state, installed once per worker by the pool
# initializer so the source/config are not re-pickled per task.
_WORKER_STATE: Optional[Tuple[TraceSource, CampaignConfig, str]] = None


def _init_worker(
    source: TraceSource,
    config: CampaignConfig,
    transport: str,
    shm_prefix: Optional[str] = None,
    obs_ctx: Optional[dict] = None,
) -> None:
    global _WORKER_STATE
    # Adopt (or, when the parent is untraced, drop) the parent's trace
    # context before anything that might open spans.  Under ``fork``
    # this also discards the inherited copy of the parent's span
    # buffer, which the parent already owns.
    adopt_trace_context(obs_ctx)
    set_segment_prefix(shm_prefix)
    _warm_source(source)
    _WORKER_STATE = (source, config, transport)


@dataclass
class _WorkerFailure:
    """Sentinel a worker returns instead of raising.

    Exceptions from arbitrary sources may not survive pickling back to
    the parent; the sentinel always does, and carries the failing batch
    index plus the formatted worker traceback for the parent to wrap
    into a :class:`CampaignBatchError`.
    """

    index: int
    message: str
    traceback: str


def _worker_batch(
    item: Tuple[int, int]
) -> "Tuple[ShardPayload, BatchRecord] | _WorkerFailure":
    index, n = item
    source, config, transport = _WORKER_STATE  # type: ignore[misc]
    tracer = get_tracer()
    span_mark = tracer.mark() if tracer is not None else 0
    before = obs_metrics.snapshot()
    try:
        acc, record = _timed_batch(source, config, index, n)
        payload = pack_shard(acc, transport)
    except Exception as exc:
        return _WorkerFailure(
            index, f"{type(exc).__name__}: {exc}", traceback.format_exc()
        )
    record.pipe_bytes = payload.pipe_bytes
    # Ship this batch's registry delta (and, when tracing, its spans)
    # to the parent on the record — the worker→parent aggregation path
    # that keeps one metrics snapshot covering the whole campaign.
    record.metrics = obs_metrics.snapshot().diff(before).as_dict()
    if tracer is not None:
        record.spans = tracer.spans(since=span_mark)
    # Ownership of a shared-memory segment moves to the parent with
    # this return; drop it from our registry so the worker's exit
    # finalizer can't unlink a segment the parent is about to read.
    return mark_shard_sent(payload), record


def _absorb_record(record: BatchRecord) -> None:
    """Fold a worker-produced record's telemetry into this process.

    Merges the batch's metrics diff into the parent registry and
    ingests its spans into the parent tracer, then strips both from
    the record (they have been consumed; keeping worker span lists on
    every record would bloat ``CampaignStats``).  Serial batches never
    attach either, so this is a no-op for them.
    """
    if record.metrics is not None:
        obs_metrics.merge_into(record.metrics)
        record.metrics = None
    if record.spans is not None:
        ingest_spans(record.spans)
        record.spans = None


def _attach_phases(stats: CampaignStats, span_mark: int) -> None:
    """Aggregate this run's spans into ``stats.phases`` (traced runs)."""
    tracer = get_tracer()
    if tracer is not None:
        stats.phases = campaign_phases(tracer.spans(since=span_mark))


def _trace_mark() -> int:
    tracer = get_tracer()
    return tracer.mark() if tracer is not None else 0


def _pool_context(config: CampaignConfig):
    """The multiprocessing context campaign pools run under.

    Prefers ``fork`` (workers inherit the parent's warmed schedule
    cache and the source is never pickled) unless the config names a
    start method; falls back to the platform default.
    """
    if config.start_method is not None:
        return multiprocessing.get_context(config.start_method)
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _campaign_pool(
    n_workers: int,
    source: TraceSource,
    config: CampaignConfig,
    transport: str,
    stats: Optional[CampaignStats] = None,
) -> "multiprocessing.pool.Pool":
    """Worker pool primed with the campaign state.

    Under ``fork`` the source is warmed (and its circuits pinned) in
    the parent *before* the pool is created, so every worker inherits
    the compiled schedules; under ``spawn`` the workers warm themselves
    in :func:`_init_worker`.
    """
    ctx = _pool_context(config)
    if segment_prefix() is None:
        # One prefix per campaign run: every segment any worker creates
        # is attributable (and scavengeable) by the parent.
        set_segment_prefix(new_campaign_prefix())
    if ctx.get_start_method() == "fork":
        warm_s = _warm_source(source)
        if stats is not None:
            stats.warmup_seconds += warm_s
    # Capture the context *before* opening the setup span so worker
    # spans root under the campaign span, not under pool setup.
    obs_ctx = trace_context()
    with trace("campaign.pool_setup", n_workers=n_workers):
        return ctx.Pool(
            n_workers,
            initializer=_init_worker,
            initargs=(
                source, config, transport, segment_prefix(), obs_ctx,
            ),
        )


def _iter_shards(
    source: TraceSource,
    config: CampaignConfig,
    n_workers: "Optional[int | str]",
    stats: CampaignStats,
) -> Iterator[TTestAccumulator]:
    """Yield one accumulator shard per batch, in batch order.

    Effective ``n_workers <= 1``: batches are simulated in-process.
    Otherwise a process pool shards them; ``imap`` keeps the yield
    order equal to the batch order, so consumers merging shards as they
    arrive get the serial result bit for bit.  Appends one
    :class:`BatchRecord` per yielded shard to ``stats``.
    """
    plan = _batch_plan(config)
    if n_workers is None:
        n_workers = config.n_workers
    effective = resolve_n_workers(n_workers, len(plan))
    stats.requested_workers = n_workers
    stats.n_workers = effective
    stats.oversubscribed = effective > stats.cpu_count
    if effective == 1:
        stats.start_method = "serial"
        stats.transport = "none"
        for index, n in plan:
            try:
                shard, record = _timed_batch(source, config, index, n)
            except Exception as exc:
                raise CampaignBatchError(
                    index, config.label, f"{type(exc).__name__}: {exc}"
                ) from exc
            stats.batches.append(record)
            yield shard
        return
    transport = resolve_transport(config.transport, source.n_samples)
    stats.start_method = _pool_context(config).get_start_method()
    stats.transport = transport
    try:
        with _campaign_pool(effective, source, config, transport, stats) as pool:
            for out in pool.imap(_worker_batch, plan):
                if isinstance(out, _WorkerFailure):
                    raise CampaignBatchError(
                        out.index, config.label, out.message, out.traceback
                    )
                payload, record = out
                adopt_shard(payload)
                _absorb_record(record)
                stats.batches.append(record)
                yield unpack_shard(payload)
    finally:
        # The pool is dead here (the context manager terminated it), so
        # anything the prefix scan finds is a true orphan — in-flight
        # shards of a cancelled run, or leftovers of killed workers.
        with trace("campaign.scavenge"):
            stats.scavenged_segments += len(scavenge_orphans())


def _begin_stats(config: CampaignConfig) -> CampaignStats:
    return CampaignStats(
        label=config.label,
        n_traces=config.n_traces,
        batch_size=config.batch_size,
        cpu_count=os.cpu_count() or 1,
    )


# ----------------------------------------------------------------------
# campaign runners
# ----------------------------------------------------------------------
def run_campaign(
    source: TraceSource,
    config: CampaignConfig,
    n_workers: "Optional[int | str]" = None,
) -> TvlaResult:
    """Run one fixed-vs-random TVLA campaign against ``source``.

    Args:
        source: Device under test.
        config: Campaign parameters.
        n_workers: Process count; ``None`` uses ``config.n_workers``,
            ``"auto"`` matches the host's CPU count.  Any value yields
            the identical t-statistics; the attached
            :class:`CampaignStats` (``result.stats``) records the
            topology, throughput and transport actually used.
    """
    stats = _begin_stats(config)
    span_mark = _trace_mark()
    t0 = time.perf_counter()
    acc = TTestAccumulator(source.n_samples)
    with trace("campaign.run", label=config.label, n_traces=config.n_traces):
        for shard in _iter_shards(source, config, n_workers, stats):
            with trace("campaign.merge"):
                acc.merge(shard)
    stats.wall_seconds = time.perf_counter() - t0
    if tracing_enabled():
        _attach_phases(stats, span_mark)
    return acc.result(label=config.label, stats=stats)


def detect_leakage_traces(
    source: TraceSource,
    config: CampaignConfig,
    order: int = 1,
    threshold: float = 4.5,
    consecutive: int = 2,
    n_workers: "Optional[int | str]" = None,
) -> Tuple[Optional[int], TvlaResult]:
    """How many traces until TVLA flags leakage?

    Streams batches and checks the t-statistic after each one; reports
    the trace count at which |t| exceeded the threshold in
    ``consecutive`` successive checks (debouncing statistical flukes).
    This regenerates the paper's "significant peaks with as little as
    12 000 traces" PRNG-off sanity numbers (Fig. 14a / 17d).

    With parallel workers batches are simulated ahead in parallel but
    *checked* strictly in batch order, so the detection point is the
    same as the serial run's; workers simulating batches beyond the
    detection point are cancelled when the generator is closed.  (The
    ``auto`` transport resolves to ``pickle`` here: cancellation can
    drop in-flight results, which must not strand shared-memory
    segments.)

    Returns:
        ``(n_traces_at_detection or None, final TvlaResult)``.
    """
    if config.transport == "auto":
        config = replace(config, transport="pickle")
    stats = _begin_stats(config)
    span_mark = _trace_mark()
    t0 = time.perf_counter()
    acc = TTestAccumulator(source.n_samples)
    hits = 0
    detected: Optional[int] = None
    shards = _iter_shards(source, config, n_workers, stats)
    try:
        with trace(
            "campaign.run", label=config.label, n_traces=config.n_traces
        ):
            for shard in shards:
                with trace("campaign.merge"):
                    acc.merge(shard)
                t = acc.t_stats(order)
                if np.max(np.abs(t)) > threshold:
                    hits += 1
                    if hits >= consecutive and detected is None:
                        detected = acc.n_traces
                        break
                else:
                    hits = 0
    finally:
        shards.close()
    stats.wall_seconds = time.perf_counter() - t0
    if tracing_enabled():
        _attach_phases(stats, span_mark)
    return detected, acc.result(label=config.label, stats=stats)


def run_multi_fixed(
    make_source: Callable[[int], TraceSource],
    config: CampaignConfig,
    n_fixed: int = 3,
    n_workers: "Optional[int | str]" = None,
) -> List[TvlaResult]:
    """The paper's protocol: repeat the test with several fixed plaintexts.

    Args:
        make_source: Factory mapping a fixed-plaintext index (0..n-1) to
            a trace source configured with that fixed stimulus.
        config: Shared campaign parameters (seed is offset per test).
        n_fixed: Number of different fixed plaintexts (paper uses 3).
        n_workers: Forwarded to each :func:`run_campaign`.

    Returns:
        One :class:`TvlaResult` per fixed plaintext; combine with
        :func:`repro.leakage.tvla.consistent_leakage`.
    """
    results = []
    for i in range(n_fixed):
        cfg = replace(
            config,
            seed=config.seed + 1000 * (i + 1),
            label=f"{config.label} fixed#{i}" if config.label else f"fixed#{i}",
        )
        results.append(run_campaign(make_source(i), cfg, n_workers=n_workers))
    return results
