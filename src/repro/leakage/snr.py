"""Signal-to-noise ratio of power traces.

SNR(sample) = Var_v( E[trace | v] ) / E_v( Var[trace | v] )

where v is a partition variable (e.g. an intermediate value or the
unshared plaintext bit).  The paper replicates parallel secAND2
instances to *improve* SNR in the Sec. II-B sequence experiments; the
examples use this module to show that effect quantitatively.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["snr"]


def snr(traces: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Per-sample SNR for a partition of the traces.

    Args:
        traces: (n, n_samples) power matrix.
        labels: (n,) integer class labels (the partition variable).

    Returns:
        (n_samples,) SNR values (0 where the noise variance vanishes).
    """
    labels = np.asarray(labels)
    classes = np.unique(labels)
    if classes.size < 2:
        raise ValueError("need at least two classes")
    means = []
    variances = []
    weights = []
    for c in classes:
        sel = traces[labels == c]
        if sel.shape[0] == 0:
            continue
        means.append(sel.mean(axis=0))
        variances.append(sel.var(axis=0))
        weights.append(sel.shape[0])
    means = np.stack(means)
    variances = np.stack(variances)
    w = np.asarray(weights, dtype=np.float64)[:, None]
    grand = (means * w).sum(axis=0) / w.sum()
    signal = ((means - grand) ** 2 * w).sum(axis=0) / w.sum()
    noise = (variances * w).sum(axis=0) / w.sum()
    with np.errstate(divide="ignore", invalid="ignore"):
        out = signal / noise
    return np.where(noise > 0, out, 0.0)
