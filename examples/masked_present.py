#!/usr/bin/env python3
"""Beyond DES: masking PRESENT-80 with the same gadget library.

The paper's conclusion pitches secAND2-PD at "applications such as
smart cards or RFID" — the home turf of the PRESENT lightweight cipher.
Its single 4-bit S-box has algebraic degree 3, exactly like a DES mini
S-box, so the Sec. IV recipe (secAND2 AND-stage with chained degree-3
products, per-monomial refresh, share-wise linear layer) applies
without modification:

1. decompose the PRESENT S-box into ANF and count its monomials;
2. run the full masked PRESENT-80 (masked datapath + masked key
   schedule) and verify against the published test vectors;
3. build the gate-level masked S-box in both styles and TVLA it.

Run:  python examples/masked_present.py
"""

import time

import numpy as np

from repro.core.gadgets import SharePair
from repro.core.shares import share
from repro.des.sbox_anf import monomial_name
from repro.leakage import CampaignConfig, RandomnessSource, run_campaign
from repro.netlist import Circuit
from repro.netlist.safety import check_secand2_ordering
from repro.present import (
    Masked4BitSbox,
    MaskedPresent,
    SBOX,
    build_present_sbox_pd,
    present_encrypt,
)
from repro.sim import PowerRecorder, VectorSimulator


class PresentSboxSource:
    """Fixed-vs-random TVLA source for the PD-style PRESENT S-box."""

    def __init__(self, n_luts=4, fixed_value=0xA, bin_ps=500):
        c = Circuit("present-sbox-pd")
        # realistic routing skew between independently-placed LUTs;
        # without it, mathematically-equal delays make two refreshed
        # products reach an XOR-tree node at the *same instant*, whose
        # single transition exposes unshared data (see
        # docs/leakage_theory.md, Sec. 3)
        c.enable_routing_jitter(7, gate_sigma_ps=40.0, delay_sigma_ps=0.0)
        self.ins = [
            SharePair(c.add_input(f"x{i}s0"), c.add_input(f"x{i}s1"))
            for i in range(4)
        ]
        self.rand = [c.add_input(f"r{k}") for k in range(8)]
        outs, _ = build_present_sbox_pd(c, self.ins, self.rand, n_luts=n_luts)
        for b, p in enumerate(outs):
            c.mark_output(f"y{b}s0", p.s0)
            c.mark_output(f"y{b}s1", p.s1)
        c.check()
        self.circuit = c
        self.fixed_value = fixed_value
        from repro.netlist.timing import arrival_times

        total = int(max(arrival_times(c).values())) + 500
        self.total_ps = total
        self.bin_ps = bin_ps
        self.n_samples = int(-(-total // bin_ps))

    def acquire(self, fixed_mask, rng):
        n = fixed_mask.shape[0]
        c = self.circuit
        sim = VectorSimulator(c, n)
        # previous computation (no reset — the PD property)
        ev = []
        for i in range(4):
            v = rng.integers(0, 2, n).astype(bool)
            s0, s1 = share(v, rng)
            ev += [(0, c.wire(f"x{i}s0"), s0), (0, c.wire(f"x{i}s1"), s1)]
        ev += [(0, c.wire(f"r{k}"), rng.integers(0, 2, n).astype(bool))
               for k in range(8)]
        sim.settle(ev)
        rec = PowerRecorder(n, self.total_ps, self.bin_ps, weights=sim.weights)
        ev = []
        for i in range(4):
            v = rng.integers(0, 2, n).astype(bool)
            v[fixed_mask] = bool((self.fixed_value >> (3 - i)) & 1)
            s0, s1 = share(v, rng)
            ev += [(0, c.wire(f"x{i}s0"), s0), (0, c.wire(f"x{i}s1"), s1)]
        ev += [(0, c.wire(f"r{k}"), rng.integers(0, 2, n).astype(bool))
               for k in range(8)]
        sim.settle(ev, recorder=rec)
        return rec.power


def main() -> None:
    print("=" * 72)
    print("1. the PRESENT S-box through the DES mini-S-box machinery")
    print("=" * 72)
    model = Masked4BitSbox(SBOX)
    print(f"   nonlinear monomials used: {len(model.anf.monomials)} of 10 "
          f"({', '.join(monomial_name(m) for m in model.anf.monomials)})")
    print(f"   fresh randomness: {model.random_bits} bits per S-box "
          f"(DES S-box: 14)")

    print()
    print("=" * 72)
    print("2. full masked PRESENT-80 vs the published test vectors")
    print("=" * 72)
    core = MaskedPresent()
    rng = np.random.default_rng(0)
    pts = rng.integers(0, 2**63, 16, dtype=np.uint64)
    keys = [int(rng.integers(0, 2**63)) << 17 | 0xBEEF for _ in range(16)]
    t0 = time.time()
    ct = core.encrypt(pts, keys, RandomnessSource(1))
    ok = all(
        int(ct[i]) == present_encrypt(int(pts[i]), keys[i])
        for i in range(16)
    )
    print(f"   masked == reference on 16 random blocks: {ok} "
          f"({time.time() - t0:.1f}s)")
    print(f"   randomness: {core.random_bits_per_round} bits/round "
          "(8 recycled across 16 S-boxes + 8 for the key schedule)")

    print()
    print("=" * 72)
    print("3. gate-level PD-style S-box: static safety + TVLA")
    print("=" * 72)
    src = PresentSboxSource()
    viol = check_secand2_ordering(src.circuit)
    print(f"   static arrival-order violations: {len(viol)}")
    res = run_campaign(
        src,
        CampaignConfig(n_traces=30_000, batch_size=5_000, noise_sigma=1.0,
                       seed=2, label="PRESENT S-box PD"),
    )
    print(f"   TVLA (30k traces, consecutive ops, no reset): {res.summary()}")


if __name__ == "__main__":
    main()
