#!/usr/bin/env python3
"""CPA key recovery: why the masking matters, in key bits.

Three campaigns against the same secret key:

1. first-order CPA vs the *unprotected* DES netlist — round-1 subkeys
   fall within a couple thousand simulated traces;
2. first-order CPA vs the masked secAND2-FF engine — ranks stay at
   chance level (the first-order security the paper's TVLA certifies);
3. second-order CPA (centered squares) vs the same masked engine — the
   parallel shares make the per-sample *variance* key-dependent, and
   subkeys start falling again, at a multiple of the trace cost.

This is the executable form of the paper's argument that an adversary
"would likely be better off using a second-order attack", and that its
cost can be pushed up with noise (Sec. VII-A).

Run:  python examples/cpa_key_recovery.py  (several minutes)
"""

import time

from repro.attacks import attack_engine
from repro.des.engines import MaskedDESNetlistEngine

KEY = 0x133457799BBCDFF1


def main() -> None:
    print("=" * 72)
    print("1. unprotected DES vs first-order CPA")
    print("=" * 72)
    t0 = time.time()
    camp = attack_engine("unprotected", KEY, n_traces=2500, order=1, seed=3)
    print(camp.render())
    print(f"[{time.time() - t0:.0f}s]\n")

    engine = MaskedDESNetlistEngine("ff")
    sboxes = (0, 1, 5, 6)

    print("=" * 72)
    print("2. masked secAND2-FF DES vs first-order CPA (same budget)")
    print("=" * 72)
    t0 = time.time()
    camp1 = attack_engine(
        "ff", KEY, n_traces=2500, sboxes=sboxes, order=1, seed=3, engine=engine
    )
    print(camp1.render())
    print(f"[{time.time() - t0:.0f}s]\n")

    print("=" * 72)
    print("3. masked secAND2-FF DES vs second-order CPA (5x budget)")
    print("=" * 72)
    t0 = time.time()
    camp2 = attack_engine(
        "ff", KEY, n_traces=12_000, sboxes=sboxes, order=2, seed=4,
        engine=engine,
    )
    print(camp2.render())
    print(f"[{time.time() - t0:.0f}s]\n")

    print("-" * 72)
    print(
        f"unprotected, order 1: {camp.n_recovered}/8 recovered | "
        f"masked, order 1: {camp1.n_recovered}/{len(sboxes)} "
        f"(mean rank {camp1.mean_rank:.0f} ~ chance) | "
        f"masked, order 2: {camp2.n_recovered}/{len(sboxes)} "
        f"(mean rank {camp2.mean_rank:.0f})"
    )


if __name__ == "__main__":
    main()
