#!/usr/bin/env python3
"""Leakage shoot-out: secAND2 arrival orders vs Trichina's masked AND.

The motivation of Sec. II in one experiment: classical Boolean-masked
AND gadgets (here Trichina's, Eq. 1) are secure only for one evaluation
*order*; in glitchy hardware, the order is set by arrival times.  We
subject three designs to the same fixed-vs-random TVLA test:

* Trichina AND, LUT-mapped, with its fresh bit arriving *first* — the
  LUT output's transition on a late x-share arrival has Hamming
  distance x.(y0^y1), the unmasked y, no matter when r arrives;
* raw secAND2 with an unsafe arrival order (x0 last),
* secAND2 with a safe order (y1 last) — the paper's solution.

Run:  python examples/gadget_leakage_comparison.py
"""

import numpy as np

from repro.core.baselines import build_trichina
from repro.core.sequences import SequenceSource, assess_sequence
from repro.core.shares import share
from repro.leakage import CampaignConfig, run_campaign
from repro.sim import PowerRecorder, VectorSimulator


class TrichinaSource:
    """Fixed-vs-random traces for Trichina's AND with r arriving first,
    then y shares, then x shares one after another (an order that is
    perfectly fine on paper — left-to-right — but evaluated by a
    glitchy circuit)."""

    ORDER = ("r", "y0", "y1", "x0", "x1")

    def __init__(self, step_ps: int = 1000, bin_ps: int = 250):
        self.circuit = build_trichina(style="lut")
        self.step_ps = step_ps
        self.bin_ps = bin_ps
        total = len(self.ORDER) * step_ps + 1000
        self.total_ps = total
        self.n_samples = -(-total // bin_ps)

    def acquire(self, fixed_mask: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n = fixed_mask.shape[0]
        x = rng.integers(0, 2, n).astype(bool)
        y = rng.integers(0, 2, n).astype(bool)
        x[fixed_mask] = True
        y[fixed_mask] = True
        x0, x1 = share(x, rng)
        y0, y1 = share(y, rng)
        r = rng.integers(0, 2, n).astype(bool)
        values = {"x0": x0, "x1": x1, "y0": y0, "y1": y1, "r": r}
        sim = VectorSimulator(self.circuit, n)
        sim.evaluate_combinational(
            {self.circuit.wire(k): False for k in self.ORDER}
        )
        rec = PowerRecorder(n, self.total_ps, self.bin_ps, weights=sim.weights)
        sim.settle(
            [
                (k * self.step_ps, self.circuit.wire(name), values[name])
                for k, name in enumerate(self.ORDER)
            ],
            recorder=rec,
        )
        return rec.power


def main() -> None:
    n_traces = 40_000
    print("fixed-vs-random TVLA, identical budgets "
          f"({n_traces} traces, sigma=1.0):\n")

    tri = run_campaign(
        TrichinaSource(),
        CampaignConfig(n_traces=n_traces, batch_size=4000, noise_sigma=1.0,
                       seed=3, label="Trichina AND (glitchy)"),
    )
    print(f"  Trichina AND, r first:        max|t1| = {tri.max_abs(1):7.2f}  "
          f"{'LEAKS' if tri.leaks(1) else 'clean'}")

    unsafe = assess_sequence(("y0", "y1", "x1", "x0"), n_traces=n_traces, seed=3)
    print(f"  secAND2, x0 arrives last:     max|t1| = {unsafe.max_t1:7.2f}  "
          f"{'LEAKS' if unsafe.leaks else 'clean'}")

    safe = assess_sequence(("x0", "x1", "y0", "y1"), n_traces=n_traces, seed=3)
    print(f"  secAND2, y1 arrives last:     max|t1| = {safe.max_t1:7.2f}  "
          f"{'LEAKS' if safe.leaks else 'clean'}")

    print("\n-> controlling the arrival order (FF or path delay) turns the")
    print("   zero-randomness secAND2 into a first-order secure gadget,")
    print("   while a fresh mask alone does not survive glitches.")


if __name__ == "__main__":
    main()
