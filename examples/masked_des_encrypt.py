#!/usr/bin/env python3
"""Encrypt with the protected DES engines and inspect their cost.

Demonstrates the two levels of the library:

* the *share-level* masked DES model (fast, for functional work),
* the *gate-level* netlist engines (cycle-accurate, glitch-simulated —
  what the leakage evaluation runs on),

and checks both against the reference cipher on random blocks, then
prints the Table III-style cost summary.

Run:  python examples/masked_des_encrypt.py
"""

import time

import numpy as np

from repro.des import (
    MaskedDES,
    MaskedDESNetlistEngine,
    bitarray_to_ints,
    des_encrypt,
    des_encrypt_bits,
    int_to_bitarray,
)
from repro.leakage import RandomnessSource
from repro.netlist import analyze, report


def main() -> None:
    rng = np.random.default_rng(2023)
    n = 256
    pt_ints = rng.integers(0, 2**63, n, dtype=np.uint64)
    key = 0x133457799BBCDFF1
    pt = int_to_bitarray(pt_ints, 64)
    ky = int_to_bitarray(np.uint64(key), 64, n)
    reference = des_encrypt_bits(pt, ky)

    print("=" * 72)
    print("share-level masked DES (functional golden model)")
    print("=" * 72)
    for variant in ("ff", "pd"):
        core = MaskedDES(variant)
        t0 = time.time()
        ct = core.encrypt(pt, ky, RandomnessSource(1))
        ok = np.array_equal(ct, reference)
        print(
            f"  secAND2-{variant.upper()}: {n} blocks in {time.time()-t0:.2f}s "
            f"| matches reference: {ok} | {core.cycles_per_round} cyc/round, "
            f"{core.total_cycles} cycles total, "
            f"{core.random_bits_per_round} rand bits/round"
        )

    print()
    print("=" * 72)
    print("gate-level engines (glitch-simulated, used for TVLA)")
    print("=" * 72)
    for variant in ("ff", "pd"):
        eng = MaskedDESNetlistEngine(variant)
        t0 = time.time()
        ct, power = eng.run_batch(pt, ky, RandomnessSource(1))
        ok = np.array_equal(ct, reference)
        rep = report(eng.circuit)
        print(
            f"  secAND2-{variant.upper()}: {n} traced blocks in "
            f"{time.time()-t0:.1f}s | correct: {ok} | "
            f"{power.shape[1]} power samples/trace"
        )
        print(
            f"    area {rep.area_ge:.0f} GE "
            f"(logic only: {rep.area_ge_no_delay:.0f}), "
            f"{rep.n_ff} FF / {rep.n_lut} LUT, "
            f"fmax {eng.timing.max_freq_mhz:.0f} MHz"
        )

    # spot-check one block against the scalar reference
    one = des_encrypt(int(pt_ints[0]), key)
    got = int(bitarray_to_ints(reference[:, :1])[0])
    print(f"\nscalar cross-check: 0x{got:016X} == 0x{one:016X}: {got == one}")


if __name__ == "__main__":
    main()
