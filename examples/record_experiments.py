#!/usr/bin/env python3
"""Run the recorded campaign whose output backs EXPERIMENTS.md.

Budgets are the 'scaled defaults' of the experiment modules (large
enough that every qualitative claim stabilises, small enough to run on
a laptop core in well under an hour).  Output goes to stdout; redirect
to a file to archive a run — conventionally the git-ignored
``eval_output/`` directory::

    python examples/record_experiments.py > eval_output/experiments_output.txt
"""

import time

from repro.eval import fig14, fig15, fig17, table1, table2, table3, traces
from repro.eval.report import rule


def main() -> None:
    t_start = time.time()

    def stamp(name, t0):
        print(f"[{name}: {time.time() - t0:.0f}s elapsed, "
              f"{time.time() - t_start:.0f}s total]\n")

    print("#" * 72)
    print("# Table I — all 24 input sequences, 30k traces each")
    print("#" * 72)
    t0 = time.time()
    print(table1.run(n_traces=30_000).render())
    stamp("table1", t0)

    print("#" * 72)
    print("# Table II — delay schedules + 3-var chain, 40k traces")
    print("#" * 72)
    t0 = time.time()
    print(table2.run(n_traces=40_000).render())
    stamp("table2", t0)

    print("#" * 72)
    print("# Table III — utilisation")
    print("#" * 72)
    t0 = time.time()
    print(table3.run().render())
    stamp("table3", t0)

    for name, variant in (("Fig. 13", "ff"), ("Fig. 16", "pd")):
        print("#" * 72)
        print(f"# {name} — power trace ({variant})")
        print("#" * 72)
        t0 = time.time()
        print(traces.run(variant, n_traces=128).render())
        stamp(name, t0)

    print("#" * 72)
    print("# Fig. 14 — FF engine TVLA (30k x 3 fixed plaintexts + off)")
    print("#" * 72)
    t0 = time.time()
    print(fig14.run(n_traces=30_000, n_traces_off=12_000).render())
    stamp("fig14", t0)

    print("#" * 72)
    print("# Fig. 15 — DelayUnit sweep (10k each, 30k at 7 LUTs)")
    print("#" * 72)
    t0 = time.time()
    print(fig15.run(n_traces=10_000, extended_traces=30_000).render())
    stamp("fig15", t0)

    print("#" * 72)
    print("# Fig. 17 — PD engine TVLA with coupling (30k x 3 + off)")
    print("#" * 72)
    t0 = time.time()
    print(fig17.run(n_traces=30_000, n_traces_off=12_000).render())
    stamp("fig17", t0)

    print(rule())
    print(f"campaign complete in {time.time() - t_start:.0f}s")


if __name__ == "__main__":
    main()
