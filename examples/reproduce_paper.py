#!/usr/bin/env python3
"""Regenerate every table and figure of the paper (scaled budgets).

Usage:
    python examples/reproduce_paper.py                 # everything
    python examples/reproduce_paper.py table1 fig14    # a subset
    python examples/reproduce_paper.py --quick         # smoke budgets

The scaled default budgets take tens of minutes in total; ``--quick``
finishes in a few minutes.  Paper-vs-measured numbers for a full run are
recorded in EXPERIMENTS.md.
"""

import argparse
import sys
import time

from repro.eval import fig14, fig15, fig17, table1, table2, table3, traces
from repro.eval.report import rule


def run_table1(quick: bool):
    return table1.run(n_traces=10_000 if quick else 30_000)


def run_table2(quick: bool):
    return table2.run(n_traces=12_000 if quick else 40_000)


def run_table3(quick: bool):
    return table3.run()


def run_fig13(quick: bool):
    return traces.run("ff", n_traces=16 if quick else 128)


def run_fig16(quick: bool):
    return traces.run("pd", n_traces=16 if quick else 128)


def run_fig14(quick: bool):
    if quick:
        return fig14.run(n_traces=6_000, n_traces_off=3_000)
    return fig14.run(n_traces=60_000, n_traces_off=12_000)


def run_fig15(quick: bool):
    if quick:
        return fig15.run(sizes=(1, 5, 10), n_traces=5_000, extended_sizes=())
    return fig15.run(n_traces=12_000, extended_traces=60_000)


def run_fig17(quick: bool):
    if quick:
        return fig17.run(
            n_traces=8_000, n_traces_off=3_000, coupling_coefficient=5.0
        )
    return fig17.run(n_traces=60_000, n_traces_off=12_000)


RUNNERS = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "fig13": run_fig13,
    "fig16": run_fig16,
    "fig14": run_fig14,
    "fig15": run_fig15,
    "fig17": run_fig17,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments",
        nargs="*",
        choices=[*RUNNERS, []],
        help="subset to run (default: all)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced smoke budgets"
    )
    args = parser.parse_args(argv)
    selected = args.experiments or list(RUNNERS)

    for name in selected:
        print()
        print("#" * 72)
        print(f"# {name}")
        print("#" * 72)
        t0 = time.time()
        result = RUNNERS[name](args.quick)
        print(result.render())
        print(f"[{name}: {time.time() - t0:.0f}s]")
    print()
    print(rule())
    print("done — see EXPERIMENTS.md for the recorded full-budget results")
    return 0


if __name__ == "__main__":
    sys.exit(main())
