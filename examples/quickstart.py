#!/usr/bin/env python3
"""Quickstart: the low-cost masked AND gadget in five minutes.

1. build the secAND2 gadget (Eq. 2) and check it computes x AND y over
   shares with *zero* fresh randomness;
2. replay the paper's Sec. II-B experiment on two input arrival orders:
   the glitch simulator + TVLA show that the order decides security
   (Table I's rule);
3. build the two hardened variants (secAND2-FF / secAND2-PD) and print
   their cost summary.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    assess_sequence,
    build_secand2,
    gadget_costs,
    share,
    unshare,
)
from repro.sim import VectorSimulator


def main() -> None:
    rng = np.random.default_rng(0)

    # -- 1. functional check ------------------------------------------
    print("=" * 72)
    print("1. secAND2 (Eq. 2): masked AND with no fresh randomness")
    print("=" * 72)
    circuit = build_secand2()
    n = 10_000
    x = rng.integers(0, 2, n).astype(bool)
    y = rng.integers(0, 2, n).astype(bool)
    x0, x1 = share(x, rng)
    y0, y1 = share(y, rng)
    sim = VectorSimulator(circuit, n)
    sim.evaluate_combinational({
        circuit.wire("x0"): x0, circuit.wire("x1"): x1,
        circuit.wire("y0"): y0, circuit.wire("y1"): y1,
    })
    out = sim.output_values()
    z = unshare(out["z0_0"], out["z1_0"])
    assert np.array_equal(z, x & y)
    print(f"verified z0 ^ z1 == x & y on {n} random sharings")
    print(f"gate inventory: {circuit.cell_counts()}  (Fig. 1)")

    # -- 2. arrival order decides security ----------------------------
    print()
    print("=" * 72)
    print("2. glitches: the input arrival order decides security")
    print("=" * 72)
    for seq in [("y0", "y1", "x1", "x0"), ("y0", "x0", "x1", "y1")]:
        verdict = assess_sequence(seq, n_traces=30_000, seed=1)
        print("  " + verdict.row())
    print("  -> Table I: safe iff y0 or y1 arrives last")

    # -- 3. the hardened gadgets --------------------------------------
    print()
    print("=" * 72)
    print("3. hardened variants and baselines (cost per masked AND)")
    print("=" * 72)
    print(f"  {'gadget':<12} {'GE':>7} {'FFs':>4} {'rand':>5} {'cycles':>7}")
    for cost in gadget_costs():
        print(
            f"  {cost.name:<12} {cost.area_ge:>7.1f} {cost.n_ff:>4} "
            f"{cost.random_bits:>5} {cost.latency_cycles:>7}"
        )
    print("\nsecAND2-FF: FF delays y1 one cycle (reset between ops)")
    print("secAND2-PD: LUT-chain path delays stagger the inputs, 1 cycle")


if __name__ == "__main__":
    main()
