#!/usr/bin/env python3
"""The paper's gadgets on AES-128 — the community's benchmark cipher.

Trichina's masked AND was proposed for AES SubBytes; DOM and Gross et
al. both demonstrated on AES.  Here the secAND2 recipe does the same,
end to end:

1. masked GF(2^8) multiplication: 64 secAND2 bit products + an 8-bit
   refresh (the Sec. III-C dependent-term rule);
2. masked inversion by the x^254 addition chain (4 multiplications);
3. the masked S-box (inversion + share-wise affine), checked against
   the table for all 256 inputs;
4. full masked AES-128 (masked key schedule included) against the
   FIPS-197 vectors;
5. first-order check: output shares of a *fixed* S-box input are
   balanced.

Run:  python examples/masked_aes.py
"""

import time

import numpy as np

from repro.aes import (
    MaskedAES128,
    MaskedByte,
    SBOX,
    aes128_encrypt,
    gf_mult,
    masked_gf_mult,
    masked_sbox,
)
from repro.leakage import RandomnessSource


def main() -> None:
    prng = RandomnessSource(1)
    rng = np.random.default_rng(0)

    print("=" * 72)
    print("1. masked GF(2^8) multiplication (64 secAND2 + 8-bit refresh)")
    print("=" * 72)
    a = rng.integers(0, 256, 5000).astype(np.uint8)
    b = rng.integers(0, 256, 5000).astype(np.uint8)
    mc = masked_gf_mult(MaskedByte.share(a, prng), MaskedByte.share(b, prng), prng)
    ref = np.array([gf_mult(int(x), int(y)) for x, y in zip(a, b)], dtype=np.uint8)
    print(f"   5000 random products correct: {np.array_equal(mc.unshare(), ref)}")

    print()
    print("=" * 72)
    print("2. masked S-box (x^254 chain, 4 masked mults = 32 fresh bits)")
    print("=" * 72)
    vals = np.arange(256, dtype=np.uint8)
    out = masked_sbox(MaskedByte.share(vals, prng), prng)
    print(f"   all 256 inputs match the table: "
          f"{np.array_equal(out.unshare(), np.array(SBOX, dtype=np.uint8))}")

    fixed = masked_sbox(
        MaskedByte.share(np.full(50_000, 0x42, dtype=np.uint8), prng), prng
    )
    bias = max(abs(float(fixed.s0[i].mean()) - 0.5) for i in range(8))
    print(f"   output share balance for a fixed input: worst bias {bias:.4f}")

    print()
    print("=" * 72)
    print("3. full masked AES-128 vs FIPS-197")
    print("=" * 72)
    pt = np.frombuffer(
        bytes.fromhex("00112233445566778899aabbccddeeff"), dtype=np.uint8
    ).reshape(1, 16)
    ky = np.frombuffer(
        bytes.fromhex("000102030405060708090a0b0c0d0e0f"), dtype=np.uint8
    ).reshape(1, 16)
    t0 = time.time()
    ct = MaskedAES128().encrypt(pt, ky, prng)
    print(f"   ciphertext: {bytes(ct[0]).hex()}")
    print(f"   expected:   69c4e0d86a7b0430d8cdb78070b4c55a "
          f"({time.time() - t0:.1f}s)")

    n = 8
    pts = rng.integers(0, 256, (n, 16)).astype(np.uint8)
    kys = rng.integers(0, 256, (n, 16)).astype(np.uint8)
    cts = MaskedAES128().encrypt(pts, kys, prng)
    ok = all(
        bytes(cts[i]) == aes128_encrypt(bytes(pts[i]), bytes(kys[i]))
        for i in range(n)
    )
    print(f"   {n} random blocks correct: {ok}")
    print()
    print("   cost note: this straightforward mapping spends 256 secAND2")
    print("   evaluations and 32 fresh bits per S-box — a tower-field")
    print("   decomposition (as DOM uses) would cut both by ~8x; the")
    print("   point here is that the paper's gadget composes correctly")
    print("   on a cipher it was never designed for.")


if __name__ == "__main__":
    main()
