#!/usr/bin/env python3
"""Composition: products of many variables and the refresh rule.

Walks through Sec. III:

1. product of four variables with a secAND2-FF tree (Fig. 4) driven by
   an FSM that enables one gadget layer per cycle;
2. product of three variables with a secAND2-PD chain (Fig. 6) and its
   Table II delay schedule, evaluated in a single settle;
3. the refresh rule (Fig. 7): computing f = x ^ y ^ x.y with and
   without refreshing the dependent product term, showing the masked
   output-share distribution is biased without it.

Run:  python examples/composition_refresh.py
"""

import numpy as np

from repro.core import (
    SharePair,
    insecure_f_xy,
    pd_delay_schedule,
    product_chain_pd,
    product_tree_ff,
    secure_f_xy,
    share,
)
from repro.netlist import Circuit
from repro.sim import ClockedHarness, VectorSimulator


def product_tree_demo(rng: np.random.Generator) -> None:
    print("=" * 72)
    print("1. product of 4 variables: secAND2-FF tree (Fig. 4)")
    print("=" * 72)
    c = Circuit("tree4")
    ops = [
        SharePair(c.add_input(f"v{i}s0"), c.add_input(f"v{i}s1"))
        for i in range(4)
    ]
    tree = product_tree_ff(c, ops)
    c.mark_output("z0", tree.output.s0)
    c.mark_output("z1", tree.output.s1)
    c.check()
    print(
        f"   {tree.n_gadgets} secAND2-FF gadgets in "
        f"{len(tree.layer_enables)} layers, latency "
        f"{tree.latency_cycles} cycles (= log2(4) + 1)"
    )

    n = 5000
    vals, events = [], []
    for i in range(4):
        v = rng.integers(0, 2, n).astype(bool)
        s0, s1 = share(v, rng)
        vals.append(v)
        events += [(0, c.wire(f"v{i}s0"), s0), (0, c.wire(f"v{i}s1"), s1)]
    h = ClockedHarness(c, n, period_ps=2000)
    # FSM: cycle 1 loads inputs + enables layer 0; cycle 2 enables layer 1
    h.step(events + [(10, tree.layer_enables[0], True)])
    h.step([(10, tree.layer_enables[0], False), (10, tree.layer_enables[1], True)])
    h.step([(10, tree.layer_enables[1], False)])
    out = h.output_values()
    expect = vals[0] & vals[1] & vals[2] & vals[3]
    print(f"   z == a.b.c.d on {n} sharings:",
          np.array_equal(out["z0"] ^ out["z1"], expect))


def product_chain_demo(rng: np.random.Generator) -> None:
    print()
    print("=" * 72)
    print("2. product of 3 variables: secAND2-PD chain (Fig. 6, Table II)")
    print("=" * 72)
    print("   delay schedule (DelayUnits):")
    names = "abc"
    for (v, s), units in sorted(pd_delay_schedule(3).items(), key=lambda kv: kv[1]):
        print(f"     {names[v]}{s}: {units}")
    c = Circuit("chain3")
    ops = [
        SharePair(c.add_input(f"v{i}s0"), c.add_input(f"v{i}s1"))
        for i in range(3)
    ]
    z = product_chain_pd(c, ops, n_luts=4)
    c.mark_output("z0", z.s0)
    c.mark_output("z1", z.s1)
    c.check()
    n = 5000
    sim = VectorSimulator(c, n)
    vals, events = [], []
    for i in range(3):
        v = rng.integers(0, 2, n).astype(bool)
        s0, s1 = share(v, rng)
        vals.append(v)
        events += [(0, c.wire(f"v{i}s0"), s0), (0, c.wire(f"v{i}s1"), s1)]
    sim.settle(events)
    out = sim.output_values()
    print("   single-cycle z == a.b.c:",
          np.array_equal(out["z0"] ^ out["z1"], vals[0] & vals[1] & vals[2]))


def refresh_demo(rng: np.random.Generator) -> None:
    print()
    print("=" * 72)
    print("3. the refresh rule: f = x ^ y ^ x.y (Fig. 7)")
    print("=" * 72)
    n = 200_000
    x = rng.integers(0, 2, n).astype(bool)
    y = rng.integers(0, 2, n).astype(bool)
    x0, x1 = share(x, rng)
    y0, y1 = share(y, rng)
    for circ, label, extra in (
        (insecure_f_xy(), "without refresh", {}),
        (secure_f_xy(), "with refresh   ", {"m": rng.integers(0, 2, n).astype(bool)}),
    ):
        assign = {
            circ.wire("x0"): x0, circ.wire("x1"): x1,
            circ.wire("y0"): y0, circ.wire("y1"): y1,
        }
        for name, v in extra.items():
            assign[circ.wire(name)] = v
        sim = VectorSimulator(circ, n)
        sim.evaluate_combinational(assign)
        out = sim.output_values()
        assert np.array_equal(out["f0"] ^ out["f1"], x ^ y ^ (x & y))
        probs = [
            out["f0"][(x == a) & (y == b)].mean()
            for a in (0, 1) for b in (0, 1)
        ]
        bias = max(probs) - min(probs)
        print(
            f"   {label}: P[f0=1 | x,y] over the four input classes: "
            f"{[f'{p:.3f}' for p in probs]}  (spread {bias:.3f})"
        )
    print("   -> the dependent product term must be refreshed before the")
    print("      XOR plane, costing 1 fresh bit (Sec. III-C)")


def main() -> None:
    rng = np.random.default_rng(7)
    product_tree_demo(rng)
    product_chain_demo(rng)
    refresh_demo(rng)


if __name__ == "__main__":
    main()
