#!/usr/bin/env python3
"""Fault injection: where does the secAND2-PD protection collapse?

1. sweep per-gate delay variation (common random numbers) over a bank
   of secAND2-PD gadgets and watch the ordering margins erode linearly
   until the static checker and TVLA agree the design broke — the
   report names the exact instance and constraint that collapsed first;
2. break one gadget surgically with a targeted DelayUnit shift and show
   the checker pinpoints it;
3. run a checkpointed campaign, kill it mid-way, and resume it to the
   bitwise-identical result.

Run:  python examples/fault_margin_sweep.py
"""

import os
import tempfile

import numpy as np

from repro.faults import (
    build_pd_bank,
    margin_erosion_sweep,
    PDBankSource,
    shift_gate_delay,
)
from repro.leakage import CampaignConfig, run_campaign, run_campaign_resilient
from repro.leakage.acquisition import CampaignBatchError
from repro.netlist.safety import check_secand2_ordering, min_ordering_margin


def main() -> None:
    # -- 1. margin-erosion sweep --------------------------------------
    print("=" * 72)
    print("1. delay-variation sweep: static margins vs. TVLA")
    print("=" * 72)
    result = margin_erosion_sweep(
        sigmas=(0, 150, 300, 450, 600),
        n_instances=8,
        fault_seed=1,
        n_traces=4000,
        batch_size=2000,
        seed=3,
    )
    print(result.render())

    # -- 2. a targeted fault ------------------------------------------
    print()
    print("=" * 72)
    print("2. targeted fault: shrink one DelayUnit past the margin")
    print("=" * 72)
    bank = build_pd_bank(n_instances=4)
    print(f"nominal: {min_ordering_margin(bank)}")
    broken = shift_gate_delay(bank, "i2_dl_y1", -600.0)
    for v in check_secand2_ordering(broken):
        print(f"violated: {v}")

    # -- 3. interrupted + resumed campaign ----------------------------
    print()
    print("=" * 72)
    print("3. checkpoint/resume: interrupted == uninterrupted, bitwise")
    print("=" * 72)
    source = PDBankSource(bank)
    cfg = CampaignConfig(
        n_traces=2000, batch_size=500, noise_sigma=1.0, seed=5,
        label="pd-bank resilient",
    )
    reference = run_campaign(source, cfg)

    class DiesAtBatch3(PDBankSource):
        calls = 0

        def acquire(self, fixed_mask, rng):
            if DiesAtBatch3.calls == 3:
                raise RuntimeError("simulated crash")
            DiesAtBatch3.calls += 1
            return super().acquire(fixed_mask, rng)

    ckpt = os.path.join(tempfile.mkdtemp(), "campaign.npz")
    crashy = DiesAtBatch3(bank)
    try:
        run_campaign_resilient(crashy, cfg, ckpt)
    except CampaignBatchError as exc:
        print(f"interrupted: {exc}")
    resumed = run_campaign_resilient(source, cfg, ckpt)
    identical = all(
        np.array_equal(a, b)
        for a, b in ((reference.t1, resumed.t1), (reference.t2, resumed.t2),
                     (reference.t3, resumed.t3))
    )
    print(f"resumed result bitwise-identical to uninterrupted run: {identical}")
    print(resumed.summary())


if __name__ == "__main__":
    main()
